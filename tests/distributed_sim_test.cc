#include <gtest/gtest.h>

#include <cmath>

#include "core/distributed_sim.h"
#include "graph/generators.h"

namespace sgnn::core {
namespace {

using graph::CsrGraph;
using partition::Partition;

DistributedCostModel TestCost() {
  DistributedCostModel cost;
  cost.seconds_per_edge = 1e-6;
  cost.seconds_per_value = 1e-7;
  cost.round_latency_seconds = 1e-4;
  return cost;
}

TEST(DistributedSimTest, SingleWorkerHasNoCommunication) {
  CsrGraph g = graph::ErdosRenyi(200, 800, 1);
  Partition p{std::vector<int>(200, 0), 1};
  DistributedReport report = SimulateDistributedEpoch(g, p, 16, TestCost());
  EXPECT_EQ(report.num_workers, 1);
  EXPECT_EQ(report.workers[0].halo_values, 0);
  EXPECT_DOUBLE_EQ(report.replication_factor, 1.0);
  // Only round latency separates epoch time from pure compute.
  EXPECT_NEAR(report.epoch_seconds - report.compute_seconds_max,
              TestCost().round_latency_seconds, 1e-12);
}

TEST(DistributedSimTest, LoadsAccountForEveryEdge) {
  CsrGraph g = graph::ErdosRenyi(300, 1500, 3);
  Partition p = partition::RandomPartition(g, 4, 5);
  DistributedReport report = SimulateDistributedEpoch(g, p, 8, TestCost());
  int64_t total_edges = 0;
  for (const auto& w : report.workers) total_edges += w.local_edges;
  EXPECT_EQ(total_edges, g.num_edges());
}

TEST(DistributedSimTest, BetterPartitionsCommunicateLess) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 2000, .num_classes = 4,
                       .avg_degree = 14, .homophily = 0.92},
      7);
  Partition random = partition::RandomPartition(sbm.graph, 4, 9);
  Partition ml = partition::MultilevelPartition(sbm.graph, 4,
                                                partition::MultilevelConfig{},
                                                9);
  auto report_random = SimulateDistributedEpoch(sbm.graph, random, 16,
                                                TestCost());
  auto report_ml = SimulateDistributedEpoch(sbm.graph, ml, 16, TestCost());
  EXPECT_LT(report_ml.comm_seconds, report_random.comm_seconds);
  EXPECT_LT(report_ml.replication_factor, report_random.replication_factor);
  EXPECT_GT(report_ml.speedup, report_random.speedup);
}

TEST(DistributedSimTest, SpeedupGrowsThenSaturatesWithWorkers) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 4000, .num_classes = 8,
                       .avg_degree = 12, .homophily = 0.9},
      11);
  double prev_speedup = 0.0;
  double best = 0.0;
  for (int k : {2, 4, 8}) {
    Partition p = partition::MultilevelPartition(
        sbm.graph, k, partition::MultilevelConfig{}, 13);
    auto report = SimulateDistributedEpoch(sbm.graph, p, 16, TestCost());
    EXPECT_LE(report.speedup, k + 1e-9);  // Can't beat perfect scaling.
    best = std::max(best, report.speedup);
    prev_speedup = report.speedup;
  }
  EXPECT_GT(best, 1.5);  // Parallelism does pay off on this graph.
  (void)prev_speedup;
}

TEST(DistributedSimTest, BenignFailureModelChangesNothing) {
  CsrGraph g = graph::ErdosRenyi(300, 1500, 3);
  Partition p = partition::RandomPartition(g, 4, 5);
  DistributedReport report = SimulateDistributedEpoch(g, p, 8, TestCost());
  EXPECT_DOUBLE_EQ(report.straggler_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.checkpoint.expected_overhead, 1.0);
  EXPECT_DOUBLE_EQ(report.checkpoint.optimal_interval_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.expected_epoch_seconds, report.epoch_seconds);
}

TEST(DistributedSimTest, StragglersInflateExpectedEpoch) {
  CsrGraph g = graph::ErdosRenyi(300, 1500, 3);
  Partition p = partition::RandomPartition(g, 4, 5);
  DistributedCostModel cost = TestCost();
  cost.failure.straggler_prob = 0.1;
  cost.failure.straggler_factor = 3.0;
  DistributedReport report = SimulateDistributedEpoch(g, p, 8, cost);
  // Expected inflation: max_compute * (s-1) * (1 - (1-q)^k).
  const double p_any = 1.0 - std::pow(0.9, 4);
  EXPECT_NEAR(report.straggler_seconds,
              report.compute_seconds_max * 2.0 * p_any, 1e-12);
  EXPECT_NEAR(report.expected_epoch_seconds,
              report.epoch_seconds + report.straggler_seconds, 1e-12);

  // More likely stragglers cost strictly more.
  cost.failure.straggler_prob = 0.5;
  DistributedReport worse = SimulateDistributedEpoch(g, p, 8, cost);
  EXPECT_GT(worse.straggler_seconds, report.straggler_seconds);
}

TEST(DistributedSimTest, CheckpointPlanFollowsYoungsApproximation) {
  FailureModel failure;
  failure.worker_failure_prob = 0.01;
  failure.checkpoint_write_seconds = 2.0;
  failure.restart_seconds = 5.0;
  const double epoch = 100.0;
  const int workers = 8;
  CheckpointPlan plan = PlanCheckpoints(epoch, workers, failure);

  const double p_epoch = 1.0 - std::pow(0.99, workers);
  EXPECT_NEAR(plan.mtbf_seconds, epoch / p_epoch, 1e-9);
  EXPECT_NEAR(plan.optimal_interval_seconds,
              std::sqrt(2.0 * 2.0 * plan.mtbf_seconds), 1e-9);
  EXPECT_GT(plan.expected_overhead, 1.0);

  // tau* minimises the overhead: sweeping the interval never beats it.
  for (double tau : {0.25, 0.5, 2.0, 4.0}) {
    const double overhead = CheckpointOverhead(
        tau * plan.optimal_interval_seconds, plan.mtbf_seconds,
        failure.checkpoint_write_seconds, failure.restart_seconds);
    EXPECT_GE(overhead, plan.expected_overhead - 1e-12);
  }
}

TEST(DistributedSimTest, HigherFailureRateMeansShorterCheckpointInterval) {
  FailureModel failure;
  failure.checkpoint_write_seconds = 1.0;
  failure.worker_failure_prob = 0.001;
  CheckpointPlan rare = PlanCheckpoints(60.0, 16, failure);
  failure.worker_failure_prob = 0.05;
  CheckpointPlan frequent = PlanCheckpoints(60.0, 16, failure);
  EXPECT_LT(frequent.mtbf_seconds, rare.mtbf_seconds);
  EXPECT_LT(frequent.optimal_interval_seconds, rare.optimal_interval_seconds);
  EXPECT_GT(frequent.expected_overhead, rare.expected_overhead);
}

TEST(DistributedSimTest, ReplicationFactorBoundedByWorkers) {
  CsrGraph g = graph::Complete(40);  // Worst case: everyone needs everyone.
  Partition p = partition::RandomPartition(g, 4, 15);
  auto report = SimulateDistributedEpoch(g, p, 4, TestCost());
  // Each worker's halo is at most the whole remote node set.
  EXPECT_LE(report.replication_factor, 4.0);
  EXPECT_GT(report.replication_factor, 3.0);  // Complete graph: near max.
}

}  // namespace
}  // namespace sgnn::core
