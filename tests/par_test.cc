#include "par/par.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "ppr/ppr.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"

namespace sgnn {
namespace {

using par::Range;

// ------------------------------------------------------------------ geometry

TEST(GeometryTest, ShardsForClampsToBounds) {
  EXPECT_EQ(par::ShardsFor(0, 100), 1);
  EXPECT_EQ(par::ShardsFor(-5, 100), 1);
  EXPECT_EQ(par::ShardsFor(99, 100), 1);
  EXPECT_EQ(par::ShardsFor(100, 100), 1);
  EXPECT_EQ(par::ShardsFor(101, 100), 2);
  EXPECT_EQ(par::ShardsFor(1'000'000'000, 1), par::kMaxShards);
}

TEST(GeometryTest, SplitUniformCoversExactlyOnce) {
  const auto ranges = par::SplitUniform(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (Range{0, 4}));
  EXPECT_EQ(ranges[1], (Range{4, 7}));
  EXPECT_EQ(ranges[2], (Range{7, 10}));
}

TEST(GeometryTest, SplitUniformClampsShardsToItems) {
  const auto ranges = par::SplitUniform(2, 8);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].size(), 1);
  EXPECT_EQ(ranges[1].size(), 1);
  EXPECT_TRUE(par::SplitUniform(0, 4).empty());
}

TEST(GeometryTest, RowRangesBalancesEdgeMass) {
  // One hub row with 90 edges, nine rows with 1: a uniform split of 10
  // rows into 2 shards would put 94 edges in the first; the edge-balanced
  // split isolates the hub.
  std::vector<int64_t> offsets = {0, 90, 91, 92, 93, 94, 95, 96, 97, 98, 99};
  const auto ranges = par::RowRanges(offsets, 2);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (Range{0, 1}));  // The hub alone.
  EXPECT_EQ(ranges[1], (Range{1, 10}));
}

TEST(GeometryTest, RowRangesCoversAllRowsContiguously) {
  common::Rng rng(7);
  std::vector<int64_t> offsets = {0};
  for (int i = 0; i < 100; ++i) {
    offsets.push_back(offsets.back() +
                      static_cast<int64_t>(rng.UniformInt(20)));
  }
  for (int shards : {1, 2, 3, 7, 64}) {
    const auto ranges = par::RowRanges(offsets, shards);
    ASSERT_FALSE(ranges.empty());
    EXPECT_EQ(ranges.front().begin, 0);
    EXPECT_EQ(ranges.back().end, 100);
    for (size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
      EXPECT_GT(ranges[i].size(), 0);
    }
  }
}

TEST(GeometryTest, RowRangesAllEmptyRowsFallsBackToUniform) {
  std::vector<int64_t> offsets(11, 0);  // 10 rows, no edges.
  const auto ranges = par::RowRanges(offsets, 4);
  ASSERT_EQ(ranges.size(), 4u);
  EXPECT_EQ(ranges.front().begin, 0);
  EXPECT_EQ(ranges.back().end, 10);
}

TEST(GeometryTest, GeometryIgnoresThreadCount) {
  // The determinism contract's first clause, checked directly.
  par::SetThreads(1);
  const auto a = par::SplitUniform(1000, par::ShardsFor(1000, 10));
  par::SetThreads(8);
  const auto b = par::SplitUniform(1000, par::ShardsFor(1000, 10));
  EXPECT_EQ(a, b);
  par::SetThreads(1);
}

TEST(ThreadsFromEnvTest, ParsesAndClampsDefensively) {
  EXPECT_EQ(par::ThreadsFromEnv(nullptr, 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("", 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("4", 3), 4);
  EXPECT_EQ(par::ThreadsFromEnv("0", 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("-2", 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("8x", 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("notanint", 3), 3);
  EXPECT_EQ(par::ThreadsFromEnv("99999", 3), 1024);
}

// ------------------------------------------------------------------ sections

TEST(ParallelForTest, RunsEveryShardExactlyOnce) {
  for (int threads : {1, 4}) {
    par::SetThreads(threads);
    std::vector<int> hits(33, 0);
    const auto ranges = par::SplitUniform(33, 33);
    par::ParallelFor("test.hits", ranges, [&](int, Range r) {
      for (int64_t i = r.begin; i < r.end; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
  par::SetThreads(1);
}

TEST(ParallelForTest, ShardIndexMatchesRange) {
  par::SetThreads(4);
  const auto ranges = par::SplitUniform(100, 8);
  std::vector<Range> seen(ranges.size());
  par::ParallelFor("test.index", ranges,
                   [&](int shard, Range r) { seen[shard] = r; });
  for (size_t i = 0; i < ranges.size(); ++i) EXPECT_EQ(seen[i], ranges[i]);
  par::SetThreads(1);
}

TEST(ParallelForTest, NestedSectionsDoNotDeadlock) {
  par::SetThreads(2);
  std::atomic<int> inner_total{0};
  const auto outer = par::SplitUniform(4, 4);
  par::ParallelFor("test.outer", outer, [&](int, Range) {
    const auto inner = par::SplitUniform(8, 8);
    par::ParallelFor("test.inner", inner, [&](int, Range r) {
      inner_total.fetch_add(static_cast<int>(r.size()));
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
  par::SetThreads(1);
}

TEST(ParallelForTest, StatsCountSectionsAndShards) {
  const par::ParStats before = par::Stats();
  const auto ranges = par::SplitUniform(10, 5);
  par::ParallelFor("test.stats", ranges, [](int, Range) {});
  par::ParallelFor("test.stats", ranges, [](int, Range) {});
  const par::ParStats after = par::Stats();
  EXPECT_EQ(after.sections - before.sections, 2u);
  EXPECT_EQ(after.shards - before.shards, 10u);
}

TEST(ParallelReduceTest, FoldsPartialsInShardOrder) {
  par::SetThreads(4);
  const auto ranges = par::SplitUniform(6, 6);
  const std::string folded = par::ParallelReduce<std::string>(
      "test.reduce", ranges,
      [](int shard, Range) { return std::string(1, 'a' + shard); },
      [](std::string acc, std::string part) { return acc + part; },
      std::string("="));
  EXPECT_EQ(folded, "=abcdef");
  par::SetThreads(1);
}

TEST(ParallelReduceTest, FloatSumIsThreadCountInvariant) {
  std::vector<double> values(10'000);
  common::Rng rng(11);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  const auto ranges = par::SplitUniform(
      static_cast<int64_t>(values.size()),
      par::ShardsFor(static_cast<int64_t>(values.size()), 100));
  auto sum_with = [&](int threads) {
    par::SetThreads(threads);
    return par::ParallelReduce<double>(
        "test.sum", ranges,
        [&](int, Range r) {
          return std::accumulate(values.begin() + r.begin,
                                 values.begin() + r.end, 0.0);
        },
        [](double a, double b) { return a + b; }, 0.0);
  };
  const double s1 = sum_with(1);
  const double s8 = sum_with(8);
  par::SetThreads(1);
  // Bitwise equality, not EXPECT_DOUBLE_EQ: the reduction tree is fixed.
  EXPECT_EQ(std::memcmp(&s1, &s8, sizeof(s1)), 0);
}

// ------------------------------------------------------------------- billing

TEST(CounterBillingTest, WorkBillsToCallingThreadExactly) {
  for (int threads : {1, 8}) {
    par::SetThreads(threads);
    const common::OpCounters aggregate_before =
        common::AggregateThreadCounters();
    common::ScopedCounterDelta scope;
    const auto ranges = par::SplitUniform(64, 16);
    par::ParallelFor("test.billing", ranges, [](int, Range r) {
      common::OpCounters& c = common::GlobalCounters();
      c.edges_touched += static_cast<uint64_t>(r.size());
      c.floats_moved += 2 * static_cast<uint64_t>(r.size());
    });
    // The caller's scoped delta sees all of it...
    EXPECT_EQ(scope.Delta().edges_touched, 64u) << threads;
    EXPECT_EQ(scope.Delta().floats_moved, 128u) << threads;
    // ...and the process-wide aggregate grew by exactly that much (worker
    // slots were reverted, so nothing is double-counted).
    const common::OpCounters aggregate_after =
        common::AggregateThreadCounters();
    EXPECT_EQ(aggregate_after.edges_touched - aggregate_before.edges_touched,
              64u)
        << threads;
    EXPECT_EQ(aggregate_after.floats_moved - aggregate_before.floats_moved,
              128u)
        << threads;
  }
  par::SetThreads(1);
}

TEST(CounterBillingTest, GemmBillsActualFlopsNotShape) {
  tensor::Matrix a(4, 8), b(8, 5), out;
  common::Rng rng(3);
  for (int64_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.Uniform(0.5, 1.0));
  }
  for (int64_t i = 0; i < b.size(); ++i) {
    b.data()[i] = static_cast<float>(rng.Uniform(0.5, 1.0));
  }
  common::ScopedCounterDelta dense_scope;
  tensor::Gemm(a, b, &out);
  EXPECT_EQ(dense_scope.Delta().floats_moved, 4u * 8u * 5u);

  // Zero out half of a's entries: the skip fast path must bill half.
  for (int64_t i = 0; i < a.size(); i += 2) a.data()[i] = 0.0f;
  common::ScopedCounterDelta sparse_scope;
  tensor::Gemm(a, b, &out);
  EXPECT_EQ(sparse_scope.Delta().floats_moved, 4u * 8u * 5u / 2);
}

// ------------------------------------------- kernel byte-identity, 1 vs 8

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

bool BytesEqual(const tensor::Matrix& a, const tensor::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

TEST(ByteIdentityTest, GemmFamily) {
  const tensor::Matrix a = RandomMatrix(70, 40, 1);
  const tensor::Matrix b = RandomMatrix(40, 30, 2);
  const tensor::Matrix bt = RandomMatrix(30, 40, 3);
  const tensor::Matrix at = RandomMatrix(40, 70, 4);
  tensor::Matrix c1, c8;

  par::SetThreads(1);
  tensor::Gemm(a, b, &c1);
  par::SetThreads(8);
  tensor::Gemm(a, b, &c8);
  EXPECT_TRUE(BytesEqual(c1, c8));

  par::SetThreads(1);
  tensor::GemmTransposeA(at, b, &c1);
  par::SetThreads(8);
  tensor::GemmTransposeA(at, b, &c8);
  EXPECT_TRUE(BytesEqual(c1, c8));

  par::SetThreads(1);
  tensor::GemmTransposeB(a, bt, &c1);
  par::SetThreads(8);
  tensor::GemmTransposeB(a, bt, &c8);
  EXPECT_TRUE(BytesEqual(c1, c8));
  par::SetThreads(1);
}

TEST(ByteIdentityTest, ElementwiseAndRowKernels) {
  auto run_all = [](int threads) {
    par::SetThreads(threads);
    tensor::Matrix m = RandomMatrix(200, 40, 5);
    const tensor::Matrix other = RandomMatrix(200, 40, 6);
    std::vector<float> bias(40, 0.25f);
    tensor::Axpy(0.5f, other, &m);
    tensor::Scale(1.25f, &m);
    tensor::Hadamard(other, &m);
    tensor::AddBiasRow(bias, &m);
    tensor::Relu(&m);
    tensor::SoftmaxRows(&m);
    tensor::LogSoftmaxRows(&m);
    tensor::NormalizeRows(2, &m);
    return m;
  };
  const tensor::Matrix m1 = run_all(1);
  const tensor::Matrix m8 = run_all(8);
  par::SetThreads(1);
  EXPECT_TRUE(BytesEqual(m1, m8));
}

TEST(ByteIdentityTest, PropagatorApply) {
  const graph::CsrGraph g = graph::BarabasiAlbert(500, 6, 42);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), 16, 7);
  auto run = [&](int threads) {
    par::SetThreads(threads);
    graph::Propagator prop(g, graph::Normalization::kSymmetric,
                           /*add_self_loops=*/true);
    tensor::Matrix out;
    prop.Apply(x, &out);
    return out;
  };
  const tensor::Matrix o1 = run(1);
  const tensor::Matrix o8 = run(8);
  par::SetThreads(1);
  EXPECT_TRUE(BytesEqual(o1, o8));
}

TEST(ByteIdentityTest, PropagatorApplyVector) {
  const graph::CsrGraph g = graph::ErdosRenyi(400, 3000, 9);
  std::vector<double> x(g.num_nodes());
  common::Rng rng(8);
  for (double& v : x) v = rng.Uniform();
  graph::Propagator prop(g, graph::Normalization::kRow,
                         /*add_self_loops=*/false);
  std::vector<double> o1, o8;
  par::SetThreads(1);
  prop.ApplyVector(x, &o1);
  par::SetThreads(8);
  prop.ApplyVector(x, &o8);
  par::SetThreads(1);
  ASSERT_EQ(o1.size(), o8.size());
  EXPECT_EQ(std::memcmp(o1.data(), o8.data(), o1.size() * sizeof(double)), 0);
}

TEST(ByteIdentityTest, PprPushBatch) {
  const graph::CsrGraph g = graph::BarabasiAlbert(600, 5, 21);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 40; ++s) seeds.push_back(s * 7 % 600);
  auto run = [&](int threads) {
    par::SetThreads(threads);
    return ppr::PushBatch(g, seeds, 0.15, 1e-4);
  };
  const auto r1 = run(1);
  const auto r8 = run(8);
  par::SetThreads(1);
  ASSERT_EQ(r1.size(), r8.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].pushes, r8[i].pushes) << i;
    EXPECT_EQ(r1[i].edges_touched, r8[i].edges_touched) << i;
    ASSERT_EQ(r1[i].estimate.size(), r8[i].estimate.size()) << i;
    for (size_t j = 0; j < r1[i].estimate.size(); ++j) {
      EXPECT_EQ(r1[i].estimate[j].first, r8[i].estimate[j].first);
      EXPECT_EQ(std::memcmp(&r1[i].estimate[j].second,
                            &r8[i].estimate[j].second, sizeof(double)),
                0);
    }
  }
}

TEST(PushBatchTest, MatchesSingleSourcePushPerSeed) {
  const graph::CsrGraph g = graph::ErdosRenyi(300, 2400, 33);
  const std::vector<graph::NodeId> seeds = {0, 17, 17, 299};  // Dup allowed.
  const auto batch = ppr::PushBatch(g, seeds, 0.2, 1e-3);
  ASSERT_EQ(batch.size(), seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    const ppr::PushResult single = ppr::ForwardPush(g, seeds[i], 0.2, 1e-3);
    EXPECT_EQ(batch[i].pushes, single.pushes);
    EXPECT_EQ(batch[i].estimate, single.estimate);
  }
}

void ExpectBatchesEqual(const sampling::MiniBatch& a,
                        const sampling::MiniBatch& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_EQ(a.layers[l].dst, b.layers[l].dst) << l;
    EXPECT_EQ(a.layers[l].src, b.layers[l].src) << l;
    EXPECT_EQ(a.layers[l].offsets, b.layers[l].offsets) << l;
    EXPECT_EQ(a.layers[l].src_local, b.layers[l].src_local) << l;
    ASSERT_EQ(a.layers[l].weights.size(), b.layers[l].weights.size()) << l;
    EXPECT_EQ(std::memcmp(a.layers[l].weights.data(),
                          b.layers[l].weights.data(),
                          a.layers[l].weights.size() * sizeof(float)),
              0)
        << l;
  }
}

TEST(ByteIdentityTest, SamplersWithKeyedStreams) {
  const graph::CsrGraph g = graph::BarabasiAlbert(800, 8, 55);
  std::vector<graph::NodeId> seeds;
  for (graph::NodeId s = 0; s < 64; ++s) seeds.push_back(s * 11 % 800);
  const std::vector<int> fanouts = {5, 3};
  auto node_wise = [&](int threads) {
    par::SetThreads(threads);
    common::Rng rng(99);
    return sampling::SampleNodeWise(g, seeds, fanouts, &rng);
  };
  auto labor = [&](int threads) {
    par::SetThreads(threads);
    common::Rng rng(99);
    return sampling::SampleLabor(g, seeds, fanouts, &rng);
  };
  auto layer_wise = [&](int threads) {
    par::SetThreads(threads);
    common::Rng rng(99);
    const std::vector<int> sizes = {128, 64};
    return sampling::SampleLayerWise(g, seeds, sizes, &rng);
  };
  ExpectBatchesEqual(node_wise(1), node_wise(8));
  ExpectBatchesEqual(labor(1), labor(8));
  ExpectBatchesEqual(layer_wise(1), layer_wise(8));
  par::SetThreads(1);
}

// ----------------------------------------------------------- concurrency

/// Exercises every parallel kernel from several caller threads at once —
/// the TSan job's main subject: pool sharing, nested sections, counter
/// re-billing, and the lazily started pool must all be race-free.
TEST(ConcurrencyTest, ParallelKernelsFromConcurrentCallers) {
  par::SetThreads(4);
  const graph::CsrGraph g = graph::BarabasiAlbert(300, 5, 77);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), 8, 70);
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      graph::Propagator prop(g, graph::Normalization::kRow, true);
      tensor::Matrix out, ref;
      prop.Apply(x, &ref);
      for (int iter = 0; iter < 5; ++iter) {
        prop.Apply(x, &out);
        if (!BytesEqual(out, ref)) failures.fetch_add(1);
        const tensor::Matrix a =
            RandomMatrix(50, 30, static_cast<uint64_t>(t * 10 + iter));
        tensor::Matrix c;
        tensor::Gemm(a, RandomMatrix(30, 20, 5), &c);
        std::vector<graph::NodeId> seeds = {static_cast<graph::NodeId>(t),
                                            static_cast<graph::NodeId>(iter)};
        ppr::PushBatch(g, seeds, 0.2, 1e-3);
      }
    });
  }
  for (std::thread& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
  par::SetThreads(1);
}

}  // namespace
}  // namespace sgnn
