#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/propagate.h"
#include "spectral/dense_linalg.h"
#include "spectral/embeddings.h"
#include "spectral/filters.h"
#include "spectral/spectrum.h"
#include "tensor/ops.h"

namespace sgnn::spectral {
namespace {

using graph::CsrGraph;
using graph::Normalization;
using graph::Propagator;
using tensor::Matrix;

TEST(JacobiEigenTest, DiagonalMatrix) {
  std::vector<double> a = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  auto result = JacobiEigen(a, 3);
  ASSERT_EQ(result.eigenvalues.size(), 3u);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(result.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(result.eigenvalues[2], 3.0, 1e-10);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  auto result = JacobiEigen({2, 1, 1, 2}, 2);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(result.eigenvalues[1], 3.0, 1e-10);
}

TEST(JacobiEigenTest, EigenvectorsSatisfyDefinition) {
  std::vector<double> a = {4, 1, 0, 1, 3, 1, 0, 1, 2};
  auto original = a;
  auto result = JacobiEigen(a, 3);
  // Check A v_j = lambda_j v_j for each column j.
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 3; ++i) {
      double av = 0.0;
      for (int k = 0; k < 3; ++k) {
        av += original[static_cast<size_t>(i) * 3 + k] *
              result.eigenvectors[static_cast<size_t>(k) * 3 + j];
      }
      EXPECT_NEAR(av,
                  result.eigenvalues[static_cast<size_t>(j)] *
                      result.eigenvectors[static_cast<size_t>(i) * 3 + j],
                  1e-9);
    }
  }
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // x + 2y = 5; 3x + 4y = 11 -> x=1, y=2.
  auto x = SolveLinearSystem({1, 2, 3, 4}, {5, 11}, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(SolveLinearSystemTest, PivotingHandlesZeroLeadingEntry) {
  // 0x + y = 2; x + 0y = 3.
  auto x = SolveLinearSystem({0, 1, 1, 0}, {2, 3}, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
}

TEST(LeastSquaresTest, ExactFitForConsistentSystem) {
  // y = 2 + 3t sampled at t = 0..3 with design [1, t].
  std::vector<double> design = {1, 0, 1, 1, 1, 2, 1, 3};
  std::vector<double> y = {2, 5, 8, 11};
  auto coef = LeastSquares(design, 4, 2, y);
  EXPECT_NEAR(coef[0], 2.0, 1e-6);
  EXPECT_NEAR(coef[1], 3.0, 1e-6);
}

TEST(FilterResponseTest, MonomialMatchesClosedForm) {
  PolyFilter f;
  f.basis = PolyBasis::kMonomialAdj;
  f.coeffs = {0.5, 0.25, 0.125};  // g(lambda) = sum theta_k (1-lambda)^k
  for (double lambda : {0.0, 0.5, 1.0, 1.7, 2.0}) {
    const double t = 1.0 - lambda;
    EXPECT_NEAR(EvaluateResponse(f, lambda), 0.5 + 0.25 * t + 0.125 * t * t,
                1e-12);
  }
}

TEST(FilterResponseTest, ChebyshevMatchesTrigIdentity) {
  PolyFilter f;
  f.basis = PolyBasis::kChebyshev;
  f.coeffs = {0.0, 0.0, 0.0, 1.0};  // pure T_3
  for (double m : {-0.9, -0.3, 0.0, 0.4, 0.8}) {
    const double expected = std::cos(3.0 * std::acos(m));
    EXPECT_NEAR(EvaluateResponse(f, m + 1.0), expected, 1e-10);
  }
}

TEST(FilterResponseTest, JacobiReducesToLegendreAtZeroParams) {
  // P_2 Legendre: (3x^2 - 1)/2.
  PolyFilter f;
  f.basis = PolyBasis::kJacobi;
  f.coeffs = {0.0, 0.0, 1.0};
  for (double m : {-0.5, 0.0, 0.7}) {
    EXPECT_NEAR(EvaluateResponse(f, m + 1.0), (3.0 * m * m - 1.0) / 2.0,
                1e-10);
  }
}

TEST(ApplyFilterTest, RealizesResponseOnEigenvector) {
  // On a cycle, v_j(u) = cos(2 pi j u / n) is an eigenvector of S (no self
  // loops) with eigenvalue cos(2 pi j / n); the filter must scale it by
  // g(1 - eigval).
  const int n = 16;
  CsrGraph g = graph::Cycle(n);
  Propagator prop(g, Normalization::kSymmetric, false);
  PolyFilter f;
  f.basis = PolyBasis::kChebyshev;
  f.coeffs = {0.3, -0.4, 0.2, 0.1};
  const int j = 3;
  Matrix v(n, 1);
  for (int u = 0; u < n; ++u) {
    v.at(u, 0) = static_cast<float>(std::cos(2.0 * M_PI * j * u / n));
  }
  const double s_eig = std::cos(2.0 * M_PI * j / n);
  const double lambda = 1.0 - s_eig;
  Matrix filtered = ApplyFilter(prop, f, v);
  const double gain = EvaluateResponse(f, lambda);
  for (int u = 0; u < n; ++u) {
    EXPECT_NEAR(filtered.at(u, 0), gain * v.at(u, 0), 1e-4);
  }
}

TEST(ApplyFilterTest, BasesAgreeWhenFittedToSameResponse) {
  CsrGraph g = graph::ErdosRenyi(60, 240, 7);
  Propagator prop(g, Normalization::kSymmetric, true);
  common::Rng rng(1);
  Matrix x = Matrix::Gaussian(60, 2, 0, 1, &rng);
  PolyFilter cheb = FitFilter(PolyBasis::kChebyshev, 8, LowPassResponse);
  PolyFilter mono = FitFilter(PolyBasis::kMonomialAdj, 8, LowPassResponse);
  Matrix zc = ApplyFilter(prop, cheb, x);
  Matrix zm = ApplyFilter(prop, mono, x);
  // Both 8-degree fits of the same response: outputs nearly identical.
  EXPECT_LT(tensor::MaxAbsDiff(zc, zm), 0.05 * tensor::FrobeniusNorm(x));
}

TEST(FitFilterTest, FitReproducesTargetResponse) {
  for (PolyBasis basis :
       {PolyBasis::kMonomialAdj, PolyBasis::kChebyshev, PolyBasis::kJacobi}) {
    PolyFilter f = FitFilter(basis, 10, HighPassResponse, 128, 1.0, 1.0);
    for (double lambda : {0.1, 0.7, 1.3, 1.9}) {
      EXPECT_NEAR(EvaluateResponse(f, lambda), HighPassResponse(lambda), 0.02)
          << "basis " << static_cast<int>(basis) << " lambda " << lambda;
    }
  }
}

TEST(FitFilterTest, BandRejectNeedsHighDegree) {
  PolyFilter low = FitFilter(PolyBasis::kChebyshev, 2, BandRejectResponse);
  PolyFilter high = FitFilter(PolyBasis::kChebyshev, 16, BandRejectResponse);
  double err_low = 0.0, err_high = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double lambda = 2.0 * (i + 0.5) / 50;
    err_low += std::fabs(EvaluateResponse(low, lambda) -
                         BandRejectResponse(lambda));
    err_high += std::fabs(EvaluateResponse(high, lambda) -
                          BandRejectResponse(lambda));
  }
  EXPECT_LT(err_high, err_low / 2.0);
}

TEST(SpectrumTest, PowerMethodFindsDominantEigenvalueOfS) {
  // Without self loops, S of a connected non-bipartite graph has dominant
  // eigenvalue 1 (the trivial one).
  CsrGraph g = graph::Complete(10);
  Propagator prop(g, Normalization::kSymmetric, false);
  EXPECT_NEAR(PowerMethodDominant(prop, 200, 3), 1.0, 1e-6);
}

TEST(SpectrumTest, LanczosRecoversCompleteGraphSpectrum) {
  // K_n (no self loops): L eigenvalues are 0 and n/(n-1) (multiplicity n-1).
  const int n = 12;
  CsrGraph g = graph::Complete(n);
  Propagator prop(g, Normalization::kSymmetric, false);
  auto ritz = LanczosLaplacianSpectrum(prop, n, 5);
  ASSERT_GE(ritz.size(), 2u);
  // Propagator coefficients are single precision; allow float-level slack.
  EXPECT_NEAR(ritz.front(), 0.0, 1e-6);
  EXPECT_NEAR(ritz.back(), static_cast<double>(n) / (n - 1), 1e-6);
}

TEST(SpectrumTest, RitzValuesWithinLaplacianRange) {
  CsrGraph g = graph::ErdosRenyi(100, 400, 11);
  Propagator prop(g, Normalization::kSymmetric, true);
  auto ritz = LanczosLaplacianSpectrum(prop, 30, 7);
  for (double v : ritz) {
    EXPECT_GE(v, -1e-8);
    EXPECT_LE(v, 2.0 + 1e-8);
  }
}

TEST(SpectrumTest, SpectralGapDetectsCommunityStructure) {
  // Strongly homophilous SBM has a much smaller gap than a random graph of
  // the same density.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 400, .num_classes = 2, .avg_degree = 16,
                       .homophily = 0.95},
      13);
  CsrGraph er = graph::ErdosRenyi(400, 3200, 13);
  Propagator p_sbm(sbm.graph, Normalization::kSymmetric, false);
  Propagator p_er(er, Normalization::kSymmetric, false);
  const double gap_sbm = SpectralGap(p_sbm, 60, 1);
  const double gap_er = SpectralGap(p_er, 60, 1);
  EXPECT_LT(gap_sbm, gap_er / 2.0);
}

TEST(CombinedEmbeddingsTest, ShapeMatchesEnabledChannels) {
  CsrGraph g = graph::ErdosRenyi(40, 160, 17);
  Propagator prop(g, Normalization::kSymmetric, true);
  common::Rng rng(2);
  Matrix x = Matrix::Gaussian(40, 5, 0, 1, &rng);
  CombinedEmbeddingConfig config;
  Matrix all = CombinedEmbeddings(prop, x, config);
  EXPECT_EQ(all.cols(), 15);
  config.include_high_pass = false;
  EXPECT_EQ(CombinedEmbeddings(prop, x, config).cols(), 10);
  config.include_identity = false;
  EXPECT_EQ(CombinedEmbeddings(prop, x, config).cols(), 5);
}

TEST(CombinedEmbeddingsTest, RowsAreUnitNormPerChannel) {
  CsrGraph g = graph::ErdosRenyi(30, 120, 19);
  Propagator prop(g, Normalization::kSymmetric, true);
  common::Rng rng(3);
  Matrix x = Matrix::Gaussian(30, 4, 0, 1, &rng);
  CombinedEmbeddingConfig config;
  config.include_low_pass = false;
  config.include_high_pass = false;
  Matrix id_only = CombinedEmbeddings(prop, x, config);
  for (int64_t r = 0; r < id_only.rows(); ++r) {
    EXPECT_NEAR(tensor::Norm2(id_only.Row(r)), 1.0, 1e-5);
  }
}

TEST(CombinedEmbeddingsTest, HighPassSeparatesHeterophilousClasses) {
  // On a heterophilous SBM with class-mean features, the high-pass channel
  // preserves class signal that pure low-pass smoothing destroys.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 600, .num_classes = 2, .avg_degree = 12,
                       .homophily = 0.05},
      23);
  const auto n = sbm.graph.num_nodes();
  common::Rng rng(5);
  Matrix x(n, 2);
  for (graph::NodeId u = 0; u < n; ++u) {
    x.at(u, sbm.labels[u]) = 1.0f;
    x.at(u, 0) += static_cast<float>(rng.Gaussian(0, 0.3));
    x.at(u, 1) += static_cast<float>(rng.Gaussian(0, 0.3));
  }
  Propagator prop(sbm.graph, Normalization::kSymmetric, true);

  auto class_separation = [&](const Matrix& z) {
    // Distance between class means relative to within-class scatter.
    std::vector<double> mean0(z.cols(), 0.0), mean1(z.cols(), 0.0);
    int n0 = 0, n1 = 0;
    for (graph::NodeId u = 0; u < n; ++u) {
      auto row = z.Row(u);
      auto& mean = sbm.labels[u] == 0 ? mean0 : mean1;
      (sbm.labels[u] == 0 ? n0 : n1)++;
      for (int64_t c = 0; c < z.cols(); ++c) mean[c] += row[c];
    }
    double dist = 0.0;
    for (int64_t c = 0; c < z.cols(); ++c) {
      const double d = mean0[c] / n0 - mean1[c] / n1;
      dist += d * d;
    }
    return std::sqrt(dist);
  };

  CombinedEmbeddingConfig low_only{.hops = 6,
                                   .alpha = 0.05,
                                   .include_identity = false,
                                   .include_low_pass = true,
                                   .include_high_pass = false,
                                   .l2_normalize = false};
  CombinedEmbeddingConfig high_only = low_only;
  high_only.include_low_pass = false;
  high_only.include_high_pass = true;
  const double sep_low = class_separation(
      CombinedEmbeddings(prop, x, low_only));
  const double sep_high = class_separation(
      CombinedEmbeddings(prop, x, high_only));
  EXPECT_GT(sep_high, sep_low);
}

}  // namespace
}  // namespace sgnn::spectral
