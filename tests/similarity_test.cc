#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "similarity/cosine.h"
#include "similarity/hub_labeling.h"
#include "similarity/rewiring.h"
#include "similarity/simrank.h"

namespace sgnn::similarity {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

TEST(SimRankTest, DiagonalIsOneAndSymmetricInUnitRange) {
  CsrGraph g = graph::ErdosRenyi(30, 90, 1);
  auto s = AllPairsSimRank(g, 0.6, 8);
  const size_t n = g.num_nodes();
  for (size_t u = 0; u < n; ++u) {
    EXPECT_DOUBLE_EQ(s[u * n + u], 1.0);
    for (size_t v = 0; v < n; ++v) {
      EXPECT_NEAR(s[u * n + v], s[v * n + u], 1e-9);
      EXPECT_GE(s[u * n + v], 0.0);
      EXPECT_LE(s[u * n + v], 1.0 + 1e-12);
    }
  }
}

TEST(SimRankTest, StarLeavesHaveClosedFormSimilarity) {
  // Two leaves of a star share the single neighbour (hub), so
  // s(leaf_i, leaf_j) = c * s(hub, hub) = c.
  CsrGraph g = graph::Star(5);
  auto s = AllPairsSimRank(g, 0.6, 10);
  const size_t n = g.num_nodes();
  for (size_t i = 1; i <= 5; ++i) {
    for (size_t j = i + 1; j <= 5; ++j) {
      EXPECT_NEAR(s[i * n + j], 0.6, 1e-9);
    }
  }
}

TEST(SimRankTest, DisconnectedNodesHaveZeroSimilarity) {
  graph::EdgeListBuilder b(4);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(2, 3);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  auto s = AllPairsSimRank(g, 0.6, 10);
  EXPECT_DOUBLE_EQ(s[0 * 4 + 2], 0.0);
  EXPECT_DOUBLE_EQ(s[1 * 4 + 3], 0.0);
}

TEST(SimRankTest, MoreIterationsConvergeMonotonically) {
  CsrGraph g = graph::Cycle(8);
  auto s2 = AllPairsSimRank(g, 0.7, 2);
  auto s10 = AllPairsSimRank(g, 0.7, 10);
  auto s11 = AllPairsSimRank(g, 0.7, 11);
  // Iterates are non-decreasing and converge.
  for (size_t i = 0; i < s2.size(); ++i) {
    EXPECT_LE(s2[i], s10[i] + 1e-12);
    EXPECT_NEAR(s10[i], s11[i], 1e-2);
  }
}

TEST(SimRankTest, MonteCarloAgreesWithIterative) {
  CsrGraph g = graph::ErdosRenyi(20, 60, 3);
  auto exact = AllPairsSimRank(g, 0.6, 15);
  const size_t n = g.num_nodes();
  // Spot-check several pairs.
  for (auto [u, v] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1}, {2, 7}, {5, 19}, {3, 3}}) {
    const double mc = SimRankMonteCarlo(g, u, v, 0.6, 40000, 30, 11);
    EXPECT_NEAR(mc, exact[u * n + v], 0.03) << u << "," << v;
  }
}

TEST(SimRankTest, TopKFindsStructurallySimilarLeaves) {
  CsrGraph g = graph::Star(6);
  auto top = TopKSimRank(g, 1, 0.6, 3, 5000, 20, 10, 7);
  ASSERT_GE(top.size(), 3u);
  // All top results should be other leaves (similarity c), not the hub.
  for (const auto& [v, score] : top) {
    EXPECT_NE(v, 0u);
    EXPECT_NEAR(score, 0.6, 0.05);
  }
}

TEST(SimRankTest, HeterophilousSbmTopKPrefersSameClass) {
  // SIMGA's claim: SimRank finds same-class nodes even when edges are
  // mostly cross-class.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 200, .num_classes = 2, .avg_degree = 8,
                       .homophily = 0.1},
      5);
  int same = 0, total = 0;
  for (NodeId source : {0u, 10u, 20u, 30u, 40u}) {
    auto top = TopKSimRank(sbm.graph, source, 0.6, 5, 2000, 15, 30, 17);
    for (const auto& [v, score] : top) {
      total++;
      if (sbm.labels[v] == sbm.labels[source]) same++;
    }
  }
  // Edge homophily is 0.1; SimRank similarity should beat that baseline
  // decisively (2-hop structural similarity is same-class biased here).
  EXPECT_GT(static_cast<double>(same) / total, 0.5);
}

TEST(CosineTest, TopologyCosineCountsCommonNeighbors) {
  CsrGraph g = graph::Complete(4);
  // In K4, u and v share 2 common neighbours, degrees 3.
  EXPECT_NEAR(TopologyCosine(g, 0, 1), 2.0 / 3.0, 1e-12);
}

TEST(CosineTest, TopologyCosineZeroForIsolated) {
  CsrGraph g(3);
  EXPECT_DOUBLE_EQ(TopologyCosine(g, 0, 1), 0.0);
}

TEST(CosineTest, AttributeCosineMatchesFormula) {
  Matrix x = Matrix::FromRows({{1, 0}, {1, 1}, {0, 2}, {0, 0}});
  EXPECT_NEAR(AttributeCosine(x, 0, 1), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(AttributeCosine(x, 0, 2), 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(AttributeCosine(x, 0, 3), 0.0);  // Zero row.
}

TEST(CosineTest, BlendedInterpolates) {
  CsrGraph g = graph::Complete(4);
  Matrix x = Matrix::FromRows({{1, 0}, {0, 1}, {1, 0}, {0, 1}});
  const double topo = TopologyCosine(g, 0, 1);
  const double attr = AttributeCosine(x, 0, 1);
  EXPECT_NEAR(BlendedSimilarity(g, x, 0, 1, 1.0), topo, 1e-12);
  EXPECT_NEAR(BlendedSimilarity(g, x, 0, 1, 0.0), attr, 1e-12);
  EXPECT_NEAR(BlendedSimilarity(g, x, 0, 1, 0.5), 0.5 * topo + 0.5 * attr,
              1e-12);
}

TEST(CosineTest, TopKAttributeSimilarRanksCorrectly) {
  Matrix x = Matrix::FromRows({{1, 0}, {0.9f, 0.1f}, {0, 1}, {1, 0.05f}});
  auto top = TopKAttributeSimilar(x, 0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 3u);  // Most aligned with (1,0).
  EXPECT_EQ(top[1].first, 1u);
  EXPECT_GT(top[0].second, top[1].second);
}

TEST(HubLabelingTest, ExactOnPath) {
  CsrGraph g = graph::Path(10);
  HubLabeling index(g);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      EXPECT_EQ(index.Query(u, v), std::abs(static_cast<int>(u) -
                                            static_cast<int>(v)));
    }
  }
}

TEST(HubLabelingTest, MatchesBfsOnRandomGraphs) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    CsrGraph g = graph::ErdosRenyi(120, 360, seed);
    HubLabeling index(g);
    for (NodeId source : {0u, 17u, 53u}) {
      auto bfs = graph::BfsDistances(g, source);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(index.Query(source, v), bfs[v])
            << "seed " << seed << " pair " << source << "," << v;
      }
    }
  }
}

TEST(HubLabelingTest, DisconnectedReturnsMinusOne) {
  graph::EdgeListBuilder b(4);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(2, 3);
  HubLabeling index(CsrGraph::FromBuilder(std::move(b)));
  EXPECT_EQ(index.Query(0, 2), -1);
  EXPECT_EQ(index.Query(0, 1), 1);
}

TEST(HubLabelingTest, LabelsAreCompactOnHubbyGraphs) {
  // On a star, every node's label should be tiny: the hub covers all pairs.
  CsrGraph g = graph::Star(50);
  HubLabeling index(g);
  EXPECT_LE(index.TotalLabelEntries(), 2 * 51);
}

TEST(HubLabelingTest, HighestDegreeNodeIsFirstHub) {
  CsrGraph g = graph::Star(10);
  HubLabeling index(g);
  auto hubs = index.Hubs(3);
  ASSERT_FALSE(hubs.empty());
  EXPECT_EQ(hubs[0], 0u);  // The star centre.
}

TEST(RewiringTest, RemovesDissimilarEdges) {
  // Path 0-1-2 where 1's features are orthogonal to both neighbours.
  CsrGraph g = graph::Path(3);
  Matrix x = Matrix::FromRows({{1, 0}, {0, 1}, {1, 0}});
  RewiringConfig config;
  config.add_per_node = 0;
  config.remove_threshold = 0.5;
  auto result = RewireBySimilarity(g, x, config);
  EXPECT_EQ(result.graph.num_edges(), 0);
  EXPECT_EQ(result.edges_removed, 4);
}

TEST(RewiringTest, AddsSimilarPairs) {
  // 0 and 2 are identical but unlinked.
  CsrGraph g = graph::Path(3);
  Matrix x = Matrix::FromRows({{1, 0}, {1, 0.2f}, {1, 0}});
  RewiringConfig config;
  config.add_per_node = 1;
  config.add_threshold = 0.99;
  config.remove_threshold = 0.0;
  auto result = RewireBySimilarity(g, x, config);
  EXPECT_TRUE(result.graph.HasEdge(0, 2));
  EXPECT_TRUE(result.graph.HasEdge(2, 0));
  EXPECT_EQ(result.edges_added, 2);
}

TEST(RewiringTest, ImprovesHomophilyOnHeterophilousSbm) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 300, .num_classes = 3, .avg_degree = 10,
                       .homophily = 0.15},
      9);
  // Class-indicator features with noise.
  common::Rng rng(4);
  Matrix x(sbm.graph.num_nodes(), 3);
  for (NodeId u = 0; u < sbm.graph.num_nodes(); ++u) {
    for (int c = 0; c < 3; ++c) {
      x.at(u, c) = static_cast<float>((sbm.labels[u] == c ? 1.0 : 0.0) +
                                      rng.Gaussian(0, 0.2));
    }
  }
  RewiringConfig config;
  config.add_per_node = 3;
  config.add_threshold = 0.8;
  config.remove_threshold = 0.6;
  auto result = RewireBySimilarity(sbm.graph, x, config);
  const double before = graph::EdgeHomophily(sbm.graph, sbm.labels);
  const double after = graph::EdgeHomophily(result.graph, sbm.labels);
  EXPECT_GT(after, before + 0.2);
}

TEST(RewiringTest, NoOpConfigPreservesGraph) {
  CsrGraph g = graph::Cycle(6);
  Matrix x(6, 2, 1.0f);
  RewiringConfig config;
  config.add_per_node = 0;
  config.remove_threshold = -1.0;
  auto result = RewireBySimilarity(g, x, config);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
  EXPECT_EQ(result.edges_added, 0);
  EXPECT_EQ(result.edges_removed, 0);
}

}  // namespace
}  // namespace sgnn::similarity
