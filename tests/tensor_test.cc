#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace sgnn::tensor {
namespace {

Matrix Small() {
  return Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 1) = -2.0f;
  EXPECT_FLOAT_EQ(m.at(0, 1), -2.0f);
}

TEST(MatrixTest, EmptyMatrixIsValid) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0);
}

TEST(MatrixTest, FromRowsRoundTrips) {
  Matrix m = Small();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_FLOAT_EQ(m.at(2, 1), 6.0f);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  Matrix id = Matrix::Identity(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(id.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  common::Rng rng(1);
  Matrix m = Matrix::GlorotUniform(10, 30, &rng);
  const float limit = std::sqrt(6.0f / 40.0f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
  }
}

TEST(MatrixTest, GaussianIsDeterministicPerSeed) {
  common::Rng a(5), b(5);
  Matrix ma = Matrix::Gaussian(4, 4, 0.0f, 1.0f, &a);
  Matrix mb = Matrix::Gaussian(4, 4, 0.0f, 1.0f, &b);
  EXPECT_TRUE(ma.Equals(mb));
}

TEST(MatrixTest, GatherRowsSelectsAndOrders) {
  Matrix m = Small();
  std::vector<int64_t> idx = {2, 0};
  Matrix g = m.GatherRows(idx);
  EXPECT_EQ(g.rows(), 2);
  EXPECT_FLOAT_EQ(g.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(1, 1), 2.0f);
}

TEST(MatrixTest, AccumulateRowAdds) {
  Matrix m = Small();
  std::vector<float> inc = {10.0f, 20.0f};
  m.AccumulateRow(1, inc);
  EXPECT_FLOAT_EQ(m.at(1, 0), 13.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 24.0f);
}

TEST(OpsTest, GemmMatchesHandComputation) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}});
  Matrix c;
  Gemm(a, b, &c);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(OpsTest, GemmWithIdentityIsNoop) {
  Matrix a = Small();
  Matrix c;
  Gemm(a, Matrix::Identity(2), &c);
  EXPECT_TRUE(c.Equals(a));
}

TEST(OpsTest, GemmTransposeAMatchesExplicitTranspose) {
  common::Rng rng(2);
  Matrix a = Matrix::Gaussian(5, 3, 0, 1, &rng);
  Matrix b = Matrix::Gaussian(5, 4, 0, 1, &rng);
  Matrix expected, got;
  Gemm(Transpose(a), b, &expected);
  GemmTransposeA(a, b, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), 1e-5);
}

TEST(OpsTest, GemmTransposeBMatchesExplicitTranspose) {
  common::Rng rng(3);
  Matrix a = Matrix::Gaussian(5, 3, 0, 1, &rng);
  Matrix b = Matrix::Gaussian(4, 3, 0, 1, &rng);
  Matrix expected, got;
  Gemm(a, Transpose(b), &expected);
  GemmTransposeB(a, b, &got);
  EXPECT_LT(MaxAbsDiff(expected, got), 1e-5);
}

TEST(OpsTest, TransposeIsInvolution) {
  common::Rng rng(4);
  Matrix m = Matrix::Gaussian(6, 2, 0, 1, &rng);
  EXPECT_TRUE(Transpose(Transpose(m)).Equals(m));
}

TEST(OpsTest, AxpyAndScale) {
  Matrix m = Small();
  Matrix other = Small();
  Axpy(2.0f, other, &m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 3.0f);
  Scale(0.5f, &m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
}

TEST(OpsTest, HadamardMultipliesElementwise) {
  Matrix m = Small();
  Matrix other = Small();
  Hadamard(other, &m);
  EXPECT_FLOAT_EQ(m.at(2, 1), 36.0f);
}

TEST(OpsTest, AddBiasRowBroadcasts) {
  Matrix m(2, 3, 0.0f);
  std::vector<float> bias = {1, 2, 3};
  AddBiasRow(bias, &m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 3.0f);
}

TEST(OpsTest, ReluClampsNegatives) {
  Matrix m = Matrix::FromRows({{-1, 2}, {3, -4}});
  Relu(&m);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
}

TEST(OpsTest, ReluBackwardMasksByPreActivation) {
  Matrix pre = Matrix::FromRows({{-1, 2}, {0, 4}});
  Matrix grad = Matrix::FromRows({{10, 10}, {10, 10}});
  ReluBackward(pre, &grad);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.at(0, 1), 10.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 0), 0.0f);  // Boundary: zero pre-act gets zero.
  EXPECT_FLOAT_EQ(grad.at(1, 1), 10.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrderPreserved) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  SoftmaxRows(&m);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (float v : m.Row(r)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_LT(m.at(0, 0), m.at(0, 2));
}

TEST(OpsTest, SoftmaxRowsIsShiftInvariantAndStable) {
  Matrix a = Matrix::FromRows({{1000, 1001, 1002}});
  SoftmaxRows(&a);
  Matrix b = Matrix::FromRows({{0, 1, 2}});
  SoftmaxRows(&b);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-5);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Matrix a = Matrix::FromRows({{0.5, -1.5, 2.0}});
  Matrix b = a;
  SoftmaxRows(&a);
  LogSoftmaxRows(&b);
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(std::log(a.at(0, c)), b.at(0, c), 1e-5);
  }
}

TEST(OpsTest, NormalizeRowsL1AndL2) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}});
  Matrix m2 = m;
  NormalizeRows(1, &m);
  EXPECT_NEAR(m.at(0, 0) + m.at(0, 1), 1.0, 1e-6);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);  // Zero row untouched.
  NormalizeRows(2, &m2);
  EXPECT_NEAR(m2.at(0, 0), 0.6, 1e-6);
  EXPECT_NEAR(m2.at(0, 1), 0.8, 1e-6);
}

TEST(OpsTest, ArgmaxRowsBreaksTiesLow) {
  Matrix m = Matrix::FromRows({{1, 3, 3}, {5, 2, 1}});
  auto idx = ArgmaxRows(m);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, ConcatColsStitches) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5}, {6}});
  Matrix c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
}

TEST(OpsTest, NormsAndDot) {
  Matrix m = Matrix::FromRows({{3, 4}});
  EXPECT_NEAR(FrobeniusNorm(m), 5.0, 1e-6);
  std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_NEAR(Dot(a, b), 32.0, 1e-6);
  EXPECT_NEAR(Norm2(a), std::sqrt(14.0), 1e-6);
}

TEST(OpsTest, MaxAbsDiffFindsLargestDeviation) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{1, 2.5}, {3, 3}});
  EXPECT_NEAR(MaxAbsDiff(a, b), 1.0, 1e-6);
}

}  // namespace
}  // namespace sgnn::tensor
