#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "analysis/validate.h"
#include "common/counters.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "par/par.h"
#include "partition/partition.h"
#include "ppr/ppr.h"
#include "sampling/neighbor_sampler.h"
#include "storage/format.h"
#include "storage/ooc.h"
#include "storage/shard_writer.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"

namespace sgnn::storage {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using graph::Normalization;

/// Fresh empty scratch directory under the test temp root.
std::string NewDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/sgnn_storage_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void FlipByte(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

void ExpectStatusContains(const common::Status& status,
                          const std::string& needle) {
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << "status message: " << status.message();
}

/// Rebuilds the full adjacency of `u` from the shard set and checks it is
/// byte-identical to the in-memory graph's.
void ExpectShardsMatchGraph(const CsrGraph& g, const std::string& dir) {
  auto manifest_or = ReadManifest(ManifestPath(dir));
  ASSERT_TRUE(manifest_or.ok()) << manifest_or.status().message();
  const ShardManifest& manifest = manifest_or.value();
  ASSERT_EQ(manifest.num_nodes, g.num_nodes());
  ASSERT_EQ(manifest.num_edges, static_cast<uint64_t>(g.num_edges()));
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    auto shard_or = ReadShardFile(ShardPath(dir, static_cast<int>(s)));
    ASSERT_TRUE(shard_or.ok()) << shard_or.status().message();
    const ShardData& shard = shard_or.value();
    for (size_t r = 0; r < shard.rows.size(); ++r) {
      const NodeId u = shard.rows[r];
      auto nbrs = g.Neighbors(u);
      auto ws = g.Weights(u);
      const uint64_t begin = shard.offsets[r];
      const uint64_t count = shard.offsets[r + 1] - begin;
      ASSERT_EQ(count, nbrs.size()) << "node " << u;
      ASSERT_EQ(0, std::memcmp(shard.neighbors.data() + begin, nbrs.data(),
                               nbrs.size() * sizeof(NodeId)));
      ASSERT_EQ(0, std::memcmp(shard.weights.data() + begin, ws.data(),
                               ws.size() * sizeof(float)));
    }
  }
}

TEST(FormatTest, ParseBudget) {
  EXPECT_EQ(ParseBudget("262144", 7), 262144u);
  EXPECT_EQ(ParseBudget("256K", 7), 256u * 1024);
  EXPECT_EQ(ParseBudget("4k", 7), 4096u);
  EXPECT_EQ(ParseBudget("3M", 7), 3u * 1024 * 1024);
  EXPECT_EQ(ParseBudget("1G", 7), uint64_t{1} << 30);
  EXPECT_EQ(ParseBudget("0", 7), 0u);
  EXPECT_EQ(ParseBudget(nullptr, 7), 7u);
  EXPECT_EQ(ParseBudget("", 7), 7u);
  EXPECT_EQ(ParseBudget("junk", 7), 7u);
  EXPECT_EQ(ParseBudget("12X", 7), 7u);
}

TEST(FormatTest, ResidentBudgetPrecedence) {
  // A context value always wins; the env is only a fallback for 0.
  const char* old = std::getenv(kResidentBudgetEnv);
  const std::string saved = old != nullptr ? old : "";
  setenv(kResidentBudgetEnv, "4K", 1);
  EXPECT_EQ(ResidentBudgetBytes(123), 123u);
  EXPECT_EQ(ResidentBudgetBytes(0), 4096u);
  unsetenv(kResidentBudgetEnv);
  EXPECT_EQ(ResidentBudgetBytes(0), 0u);
  if (old != nullptr) setenv(kResidentBudgetEnv, saved.c_str(), 1);
}

TEST(WriterTest, RoundTripContiguousPlan) {
  const CsrGraph g = graph::ErdosRenyi(200, 800, 7);
  const std::string dir = NewDir("roundtrip_contig");
  const ShardPlan plan = ShardPlan::Contiguous(g, 4);
  ASSERT_TRUE(WriteShardedGraph(g, plan, dir).ok());
  ExpectShardsMatchGraph(g, dir);
  EXPECT_TRUE(analysis::ValidateShardedGraph(dir).ok());
  // Decode -> re-serialize reproduces the on-disk bytes exactly, and a
  // second conversion of the same graph is byte-identical file for file.
  const std::string dir2 = NewDir("roundtrip_contig2");
  ASSERT_TRUE(WriteShardedGraph(g, plan, dir2).ok());
  EXPECT_EQ(ReadAll(ManifestPath(dir)), ReadAll(ManifestPath(dir2)));
  for (int s = 0; s < plan.num_shards; ++s) {
    const std::string bytes = ReadAll(ShardPath(dir, s));
    auto shard_or = ReadShardFile(ShardPath(dir, s));
    ASSERT_TRUE(shard_or.ok());
    EXPECT_EQ(SerializeShard(shard_or.value()), bytes) << "shard " << s;
    EXPECT_EQ(ReadAll(ShardPath(dir2, s)), bytes) << "shard " << s;
  }
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(WriterTest, RoundTripPartitionPlan) {
  const CsrGraph g = graph::BarabasiAlbert(150, 3, 21);
  const partition::Partition part = partition::LdgPartition(g, 3, 1.1, 5);
  const std::string dir = NewDir("roundtrip_ldg");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::FromPartition(part), dir).ok());
  ExpectShardsMatchGraph(g, dir);
  EXPECT_TRUE(analysis::ValidateShardedGraph(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(OpenTest, MissingDirectoryIsNotFound) {
  auto open_or = ShardedGraph::Open(NewDir("never_written"));
  ASSERT_FALSE(open_or.ok());
  EXPECT_EQ(open_or.status().code(), common::StatusCode::kNotFound);
}

TEST(OpenTest, ViewMatchesGraphSurface) {
  const CsrGraph g = graph::ErdosRenyi(120, 500, 3);
  const std::string dir = NewDir("surface");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 3), dir).ok());
  OpenOptions options;
  options.budget_bytes = kUnlimitedBudget;
  auto open_or = ShardedGraph::Open(dir, options);
  ASSERT_TRUE(open_or.ok()) << open_or.status().message();
  ShardedGraph& sg = *open_or.value();
  EXPECT_EQ(sg.num_nodes(), g.num_nodes());
  EXPECT_EQ(sg.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(sg.OutDegree(u), g.OutDegree(u));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto pin_or = sg.Pin(u);
    ASSERT_TRUE(pin_or.ok());
    auto nbrs = pin_or.value().Neighbors(u);
    auto expected = g.Neighbors(u);
    ASSERT_EQ(nbrs.size(), expected.size());
    EXPECT_EQ(0, std::memcmp(nbrs.data(), expected.data(),
                             nbrs.size() * sizeof(NodeId)));
    EXPECT_DOUBLE_EQ(pin_or.value().WeightedDegree(u), g.WeightedDegree(u));
  }
  std::filesystem::remove_all(dir);
}

/// One corruption-injection case per file section: flip a byte, assert the
/// diagnostic names that section, restore the byte.
TEST(CorruptionTest, EveryShardSectionIsCovered) {
  const CsrGraph g = graph::ErdosRenyi(100, 400, 9);
  const std::string dir = NewDir("corrupt");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 2), dir).ok());
  auto manifest_or = ReadManifest(ManifestPath(dir));
  ASSERT_TRUE(manifest_or.ok());
  const ShardEntry& entry = manifest_or.value().shards[0];
  ASSERT_GT(entry.num_rows, 0u);
  ASSERT_GT(entry.num_edges, 0u);
  const ShardLayout layout = LayoutFor(entry.num_rows, entry.num_edges);
  const std::string shard0 = ShardPath(dir, 0);

  const struct {
    uint64_t offset;
    const char* diagnostic;
  } cases[] = {
      {8, "header"},  // version field, covered by the header CRC
      {layout.rows_off, "rows section"},
      {layout.offsets_off, "offsets section"},
      {layout.neighbors_off, "neighbors section"},
      {layout.weights_off, "weights section"},
  };
  for (const auto& c : cases) {
    FlipByte(shard0, c.offset);
    ExpectStatusContains(ReadShardFile(shard0).status(), c.diagnostic);
    ExpectStatusContains(analysis::ValidateShardedGraph(dir), c.diagnostic);
    FlipByte(shard0, c.offset);  // restore
    ASSERT_TRUE(ReadShardFile(shard0).ok()) << "offset " << c.offset;
  }

  // Truncation: dropping the tail is caught before any section parse.
  const std::string bytes = ReadAll(shard0);
  {
    std::ofstream out(shard0, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamoff>(bytes.size() - 8));
  }
  ExpectStatusContains(ReadShardFile(shard0).status(), "truncated");
  {
    std::ofstream out(shard0, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamoff>(bytes.size()));
  }

  // Manifest corruption: the trailing CRC catches any flipped byte.
  FlipByte(ManifestPath(dir), 20);
  ASSERT_FALSE(ReadManifest(ManifestPath(dir)).ok());
  FlipByte(ManifestPath(dir), 20);

  // The mmap path re-verifies on load: a neighbour-section flip passes
  // Open (which only reads header/rows/offsets) but fails the pin.
  FlipByte(shard0, layout.neighbors_off);
  OpenOptions options;
  options.budget_bytes = kUnlimitedBudget;
  auto open_or = ShardedGraph::Open(dir, options);
  ASSERT_TRUE(open_or.ok()) << open_or.status().message();
  ExpectStatusContains(open_or.value()->PinShard(0).status(),
                       "neighbors section");
  FlipByte(shard0, layout.neighbors_off);
  std::filesystem::remove_all(dir);
}

TEST(CorruptionTest, TornManifestIsDataLossAtEveryTruncationPoint) {
  // Crash-atomicity: a torn manifest write (the rename never happened, or a
  // crash left a short file) must surface as kDataLoss with a first-offender
  // message at EVERY possible truncation length — never UB, never a
  // partially-opened graph. Sweep every byte boundary of the manifest tail.
  const CsrGraph g = graph::ErdosRenyi(60, 240, 11);
  const std::string dir = NewDir("torn_manifest");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 2), dir).ok());
  const std::string manifest_path = ManifestPath(dir);
  const std::string bytes = ReadAll(manifest_path);
  ASSERT_GT(bytes.size(), 8u);

  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    {
      std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamoff>(keep));
    }
    auto open_or = ShardedGraph::Open(dir);
    ASSERT_FALSE(open_or.ok()) << "opened with a " << keep
                               << "-byte manifest tail";
    EXPECT_EQ(open_or.status().code(), common::StatusCode::kDataLoss)
        << "keep=" << keep << ": " << open_or.status().ToString();
    // First-offender diagnostics: the message names the manifest and what
    // framing check tripped, so operators see the torn file immediately.
    ExpectStatusContains(open_or.status(), manifest_path);
  }

  // Restoring the full manifest restores the graph: no state leaked from
  // the failed opens.
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamoff>(bytes.size()));
  }
  auto open_or = ShardedGraph::Open(dir);
  ASSERT_TRUE(open_or.ok()) << open_or.status().message();
  EXPECT_EQ(open_or.value()->num_nodes(), g.num_nodes());
  std::filesystem::remove_all(dir);
}

TEST(ValidatorTest, SemanticFirstOffenderDiagnostics) {
  const CsrGraph g = graph::ErdosRenyi(80, 300, 4);
  const std::string dir = NewDir("semantic");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 2), dir).ok());
  auto manifest_or = ReadManifest(ManifestPath(dir));
  ASSERT_TRUE(manifest_or.ok());
  ShardManifest manifest = manifest_or.value();
  auto shard_or = ReadShardFile(ShardPath(dir, 0));
  ASSERT_TRUE(shard_or.ok());
  ShardData shard = shard_or.value();
  ASSERT_TRUE(analysis::ValidateShardManifest(manifest).ok());
  ASSERT_TRUE(analysis::ValidateShardData(manifest, 0, shard).ok());

  {  // Out-of-range neighbour id.
    ShardData bad = shard;
    bad.neighbors[0] = manifest.num_nodes + 5;
    ExpectStatusContains(analysis::ValidateShardData(manifest, 0, bad),
                         "neighbour id out of range");
  }
  {  // A node stored in a shard the assignment gives to another.
    ShardManifest bad = manifest;
    bad.shard_of[shard.rows[0]] = 1;
    ExpectStatusContains(analysis::ValidateShardData(bad, 0, shard),
                         "overlapping shard ranges");
    // The manifest-level counting pass sees the same overlap.
    ExpectStatusContains(analysis::ValidateShardManifest(bad),
                         "overlapping or missing shard ranges");
  }
  {  // Recorded file size inconsistent with the recorded counts.
    ShardManifest bad = manifest;
    bad.shards[0].file_bytes -= 16;
    ExpectStatusContains(analysis::ValidateShardManifest(bad),
                         "truncated shard file");
  }
  {  // Non-finite weight.
    ShardData bad = shard;
    bad.weights[0] = std::numeric_limits<float>::quiet_NaN();
    ExpectStatusContains(analysis::ValidateShardData(manifest, 0, bad),
                         "not finite");
  }
  std::filesystem::remove_all(dir);
}

TEST(ValidatorTest, RunContextWiring) {
  core::RunContext ctx;
  ctx.resident_budget_bytes = 4096;
  EXPECT_FALSE(analysis::ShardOpenOptions(ctx).deep_validator);
  ctx.validate_stages = true;
  OpenOptions options = analysis::ShardOpenOptions(ctx);
  EXPECT_EQ(options.budget_bytes, 4096u);
  ASSERT_TRUE(options.deep_validator);
  // The wired hook is the real end-to-end validator.
  const CsrGraph g = graph::ErdosRenyi(60, 200, 2);
  const std::string dir = NewDir("wiring");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 2), dir).ok());
  EXPECT_TRUE(options.deep_validator(dir).ok());
  auto manifest_or = ReadManifest(ManifestPath(dir));
  ASSERT_TRUE(manifest_or.ok());
  const ShardLayout layout = LayoutFor(manifest_or.value().shards[0].num_rows,
                                       manifest_or.value().shards[0].num_edges);
  FlipByte(ShardPath(dir, 0), layout.weights_off);
  // A deep-validated Open refuses the corrupt directory outright.
  options.budget_bytes = kUnlimitedBudget;
  auto open_or = ShardedGraph::Open(dir, options);
  ASSERT_FALSE(open_or.ok());
  ExpectStatusContains(open_or.status(), "weights section");
  std::filesystem::remove_all(dir);
}

TEST(CacheTest, BudgetExhaustionIsResourceExhausted) {
  const CsrGraph g = graph::ErdosRenyi(100, 400, 17);
  const std::string dir = NewDir("exhausted");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 2), dir).ok());
  OpenOptions options;
  options.budget_bytes = 64;  // Smaller than any shard file.
  auto open_or = ShardedGraph::Open(dir, options);
  ASSERT_TRUE(open_or.ok()) << open_or.status().message();
  auto pin_or = open_or.value()->PinShard(0);
  ASSERT_FALSE(pin_or.ok());
  EXPECT_EQ(pin_or.status().code(), common::StatusCode::kResourceExhausted);
  ExpectStatusContains(pin_or.status(), "SGNN_RESIDENT_BUDGET");
  std::filesystem::remove_all(dir);
}

uint64_t MaxShardBytes(const ShardedGraph& sg) {
  uint64_t max_bytes = 0;
  for (const ShardEntry& entry : sg.manifest().shards) {
    max_bytes = std::max(max_bytes, entry.file_bytes);
  }
  return max_bytes;
}

TEST(CacheTest, EvictionSequenceIsThreadCountInvariant) {
  const CsrGraph g = graph::ErdosRenyi(400, 3000, 23);
  const std::string dir = NewDir("eviction_det");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 6), dir).ok());
  const int saved_threads = par::NumThreads();
  StorageStats reference;
  for (const int threads : {1, 8}) {
    par::SetThreads(threads);
    OpenOptions options;
    auto probe_or = ShardedGraph::Open(dir, options);
    ASSERT_TRUE(probe_or.ok());
    options.budget_bytes = 2 * MaxShardBytes(*probe_or.value());
    auto open_or = ShardedGraph::Open(dir, options);
    ASSERT_TRUE(open_or.ok());
    ShardedGraph& sg = *open_or.value();
    auto prop_or = OocPropagator::Create(&sg, Normalization::kSymmetric, true);
    ASSERT_TRUE(prop_or.ok());
    tensor::Matrix x(static_cast<int64_t>(g.num_nodes()), 4, 1.0f);
    tensor::Matrix out;
    ASSERT_TRUE(prop_or.value().Apply(x, &out).ok());
    const std::vector<NodeId> seeds = {0, 5, 9, 120, 311};
    ASSERT_TRUE(PushBatch(&sg, seeds, 0.15, 1e-4).ok());
    const StorageStats stats = sg.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.peak_resident_bytes, options.budget_bytes);
    if (threads == 1) {
      reference = stats;
    } else {
      // The load/eviction sequence is a pure function of (graph, plan,
      // budget): byte-for-byte equal counters at any SGNN_THREADS.
      EXPECT_EQ(stats.loads, reference.loads);
      EXPECT_EQ(stats.evictions, reference.evictions);
      EXPECT_EQ(stats.bytes_loaded, reference.bytes_loaded);
      EXPECT_EQ(stats.peak_resident_bytes, reference.peak_resident_bytes);
    }
  }
  par::SetThreads(saved_threads);
  std::filesystem::remove_all(dir);
}

/// The acceptance gate: propagate + PPR + sampling over a ShardedGraph
/// whose budget is far below the total shard bytes, bit-identical to the
/// in-memory kernels, at tiny and unlimited budgets x 1 and 8 threads.
TEST(BitIdentityTest, PipelineMatchesInMemoryAtAnyBudgetAndThreads) {
  const CsrGraph g = graph::ErdosRenyi(300, 1800, 13);
  const std::string dir = NewDir("bit_identity");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 5), dir).ok());

  // In-memory reference results.
  const graph::Propagator prop(g, Normalization::kSymmetric, true);
  tensor::Matrix x(static_cast<int64_t>(g.num_nodes()), 6);
  common::Rng fill(99);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(fill.Uniform(-1.0, 1.0));
  }
  tensor::Matrix expected_out;
  prop.Apply(x, &expected_out);
  const std::vector<NodeId> seeds = {0, 7, 42, 131, 256, 299};
  const std::vector<ppr::PushResult> expected_ppr =
      ppr::PushBatch(g, seeds, 0.2, 1e-4);
  const std::vector<int> fanouts = {3, 2};
  common::Rng sample_rng(1234);
  const sampling::MiniBatch expected_batch =
      sampling::SampleNodeWise(g, seeds, fanouts, &sample_rng);

  OpenOptions probe;
  probe.budget_bytes = kUnlimitedBudget;
  auto probe_or = ShardedGraph::Open(dir, probe);
  ASSERT_TRUE(probe_or.ok());
  const uint64_t tiny = MaxShardBytes(*probe_or.value());
  ASSERT_LT(tiny, probe_or.value()->total_shard_bytes());
  probe_or.value().reset();

  const int saved_threads = par::NumThreads();
  for (const uint64_t budget : {tiny, kUnlimitedBudget}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE("budget=" + std::to_string(budget) +
                   " threads=" + std::to_string(threads));
      par::SetThreads(threads);
      OpenOptions options;
      options.budget_bytes = budget;
      auto open_or = ShardedGraph::Open(dir, options);
      ASSERT_TRUE(open_or.ok()) << open_or.status().message();
      ShardedGraph& sg = *open_or.value();

      auto ooc_prop_or =
          OocPropagator::Create(&sg, Normalization::kSymmetric, true);
      ASSERT_TRUE(ooc_prop_or.ok());
      tensor::Matrix out;
      ASSERT_TRUE(ooc_prop_or.value().Apply(x, &out).ok());
      ASSERT_EQ(out.size(), expected_out.size());
      EXPECT_EQ(0, std::memcmp(out.data(), expected_out.data(),
                               static_cast<size_t>(out.size()) *
                                   sizeof(float)));

      auto ppr_or = PushBatch(&sg, seeds, 0.2, 1e-4);
      ASSERT_TRUE(ppr_or.ok());
      ASSERT_EQ(ppr_or.value().size(), expected_ppr.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        const ppr::PushResult& got = ppr_or.value()[i];
        const ppr::PushResult& want = expected_ppr[i];
        EXPECT_EQ(got.pushes, want.pushes);
        EXPECT_EQ(got.edges_touched, want.edges_touched);
        // Exact double equality per (node, mass) entry; memcmp would also
        // compare the pair's uninitialised padding bytes.
        EXPECT_EQ(got.estimate, want.estimate);
      }

      common::Rng rng(1234);
      auto batch_or = SampleNodeWise(&sg, seeds, fanouts, &rng);
      ASSERT_TRUE(batch_or.ok());
      const sampling::MiniBatch& got = batch_or.value();
      ASSERT_EQ(got.layers.size(), expected_batch.layers.size());
      for (size_t l = 0; l < got.layers.size(); ++l) {
        EXPECT_EQ(got.layers[l].dst, expected_batch.layers[l].dst);
        EXPECT_EQ(got.layers[l].src, expected_batch.layers[l].src);
        EXPECT_EQ(got.layers[l].offsets, expected_batch.layers[l].offsets);
        EXPECT_EQ(got.layers[l].src_local,
                  expected_batch.layers[l].src_local);
        EXPECT_EQ(got.layers[l].weights, expected_batch.layers[l].weights);
      }

      const StorageStats stats = sg.stats();
      EXPECT_LE(stats.peak_resident_bytes,
                budget == kUnlimitedBudget ? sg.total_shard_bytes() : budget);
      if (budget == tiny) {
        EXPECT_GT(stats.evictions, 0u);
      }
    }
  }
  par::SetThreads(saved_threads);
  std::filesystem::remove_all(dir);
}

TEST(CountersTest, ShardCountersBillAndRebase) {
  const CsrGraph g = graph::ErdosRenyi(150, 700, 31);
  const std::string dir = NewDir("counters");
  ASSERT_TRUE(WriteShardedGraph(g, ShardPlan::Contiguous(g, 3), dir).ok());
  // Leave a ghost peak from "an earlier run"; Open must re-base it away so
  // the peaks this run reports are its own.
  common::GlobalCounters().AcquireShardBytes(1u << 30);
  common::GlobalCounters().ReleaseShardBytes(1u << 30);
  ASSERT_GE(common::GlobalCounters().peak_resident_shard_bytes, 1u << 30);
  common::ScopedCounterDelta scope;
  OpenOptions options;
  options.budget_bytes = kUnlimitedBudget;
  auto open_or = ShardedGraph::Open(dir, options);
  ASSERT_TRUE(open_or.ok());
  EXPECT_EQ(common::GlobalCounters().peak_resident_shard_bytes, 0u);
  ShardedGraph& sg = *open_or.value();
  for (int s = 0; s < sg.num_shards(); ++s) {
    ASSERT_TRUE(sg.PinShard(s).ok());
  }
  const common::OpCounters delta = scope.Delta();
  const StorageStats stats = sg.stats();
  EXPECT_EQ(delta.shard_loads, stats.loads);
  EXPECT_EQ(delta.shard_bytes_loaded, stats.bytes_loaded);
  EXPECT_EQ(delta.peak_resident_shard_bytes, stats.peak_resident_bytes);
  EXPECT_EQ(stats.resident_bytes, sg.total_shard_bytes());
  std::filesystem::remove_all(dir);
}

TEST(CountersTest, ToStringAppendsShardFieldsOnlyWhenUsed) {
  common::OpCounters c;
  c.edges_touched = 10;
  EXPECT_EQ(c.ToString().find("shard_loads"), std::string::npos);
  c.shard_loads = 2;
  c.shard_bytes_loaded = 4096;
  c.peak_resident_shard_bytes = 2048;
  const std::string s = c.ToString();
  EXPECT_NE(s.find("shard_loads=2"), std::string::npos);
  EXPECT_NE(s.find("peak_resident_shard_bytes=2048"), std::string::npos);
}

}  // namespace
}  // namespace sgnn::storage
