#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "graph/propagate.h"
#include "models/decoupled.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "serve/handoff.h"
#include "serve/khop_embedder.h"
#include "serve/metrics.h"
#include "tensor/ops.h"

namespace sgnn::serve {
namespace {

using graph::NodeId;
using tensor::Matrix;

core::Dataset SmallSbmDataset(NodeId num_nodes, uint64_t seed) {
  core::SbmDatasetConfig config;
  config.sbm.num_nodes = num_nodes;
  config.sbm.num_classes = 3;
  config.sbm.avg_degree = 8.0;
  config.sbm.homophily = 0.8;
  config.feature_dim = 8;
  return core::MakeSbmDataset(config, seed);
}

nn::TrainConfig QuickTrainConfig() {
  nn::TrainConfig config;
  config.epochs = 30;
  config.hidden_dim = 16;
  config.patience = 10;
  return config;
}

TEST(FrozenModelTest, MatchesMlpInferenceForwardExactly) {
  common::Rng rng(7);
  nn::Mlp mlp({6, 5, 3}, /*dropout=*/0.5, &rng);
  Matrix x = Matrix::Gaussian(11, 6, 0.0f, 1.0f, &rng);

  Matrix reference;
  mlp.Forward(x, /*training=*/false, nullptr, &reference);

  FrozenModel frozen = FrozenModel::FromMlp(mlp);
  EXPECT_EQ(frozen.in_dim(), 6);
  EXPECT_EQ(frozen.out_dim(), 3);
  EXPECT_EQ(frozen.num_layers(), 2);
  Matrix logits;
  frozen.Forward(x, &logits);
  // Same GEMM/bias/ReLU kernels and inference dropout is the identity, so
  // the snapshot reproduces the Mlp bit-for-bit.
  EXPECT_TRUE(logits.Equals(reference));
}

TEST(FrozenModelTest, SnapshotUnaffectedByLaterTraining) {
  common::Rng rng(3);
  nn::Mlp mlp({4, 3}, 0.0, &rng);
  Matrix x = Matrix::Gaussian(5, 4, 0.0f, 1.0f, &rng);
  FrozenModel frozen = FrozenModel::FromMlp(mlp);
  Matrix before;
  frozen.Forward(x, &before);

  // Mutate the live model (a gradient step of all-ones).
  Matrix logits;
  mlp.Forward(x, /*training=*/true, &rng, &logits);
  Matrix dlogits(logits.rows(), logits.cols(), 1.0f);
  mlp.Backward(dlogits, nullptr);
  for (nn::ParamRef p : mlp.Params()) {
    tensor::Axpy(-0.1f, *p.grad, p.value);
  }

  Matrix after;
  frozen.Forward(x, &after);
  EXPECT_TRUE(after.Equals(before));
  Matrix live;
  mlp.Forward(x, /*training=*/false, nullptr, &live);
  EXPECT_FALSE(live.Equals(before));
}

TEST(KHopEmbedderTest, MatchesGlobalPropagation) {
  core::Dataset dataset = SmallSbmDataset(120, 5);
  const int hops = 2;
  graph::Propagator prop(dataset.graph, graph::Normalization::kSymmetric,
                         /*add_self_loops=*/true);
  Matrix global = graph::PropagateKHops(prop, dataset.features, hops);

  KHopEmbedder embedder(dataset.graph, dataset.features, hops);
  std::vector<float> row(static_cast<size_t>(embedder.dim()));
  for (NodeId u = 0; u < dataset.num_nodes(); u += 7) {
    embedder.Embed(u, row);
    auto expected = global.Row(static_cast<int64_t>(u));
    for (int64_t j = 0; j < embedder.dim(); ++j) {
      EXPECT_NEAR(row[static_cast<size_t>(j)], expected[j], 1e-4)
          << "node " << u << " col " << j;
    }
  }
}

/// The serving-latency ladder now lives in `obs::Histogram`
/// (`ExponentialBuckets(1.0, 1.07, 256)`, the registry series
/// `sgnn_serve_latency_ticks`); this pins the percentile behaviour the
/// old `LatencyHistogram` guaranteed.
TEST(LatencyHistogramTest, PercentilesOrderedAndApproximate) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram(
      "latency_micros", "test ladder",
      obs::ExponentialBuckets(1.0, 1.07, 256));
  EXPECT_EQ(hist->Percentile(0.5), 0.0);  // Empty.
  for (int i = 1; i <= 100; ++i) {
    hist->Record(1000.0 * i);  // 1ms .. 100ms.
  }
  const obs::HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1000.0);
  EXPECT_DOUBLE_EQ(snap.max, 100000.0);
  const double p50 = snap.Percentile(0.50);
  const double p95 = snap.Percentile(0.95);
  const double p99 = snap.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // ~7% geometric buckets: generous windows around the exact quantiles.
  EXPECT_NEAR(p50, 50000.0, 10000.0);
  EXPECT_NEAR(p99, 99000.0, 15000.0);
}

/// End-to-end: N client threads against a server built via the
/// Pipeline::Run -> ServePipeline handoff; every response must match the
/// single-threaded FrozenModel/Mlp forward on the globally propagated
/// embeddings.
TEST(BatchingServerTest, ConcurrentClientsMatchSingleThreadedReference) {
  core::Dataset dataset = SmallSbmDataset(200, 11);
  const int hops = 2;

  core::Pipeline pipeline;
  pipeline.SetModel(
      "sgc", [](const graph::CsrGraph& g, const Matrix& x,
                std::span<const int> labels,
                const models::NodeSplits& splits,
                const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config);
      });
  core::PipelineReport report = pipeline.Run(dataset, QuickTrainConfig());
  ASSERT_NE(report.model.fitted_head, nullptr);

  // Single-threaded reference: frozen head over global S^K X.
  FrozenModel frozen = FrozenModel::FromMlp(*report.model.fitted_head);
  graph::Propagator prop(dataset.graph, graph::Normalization::kSymmetric,
                         true);
  Matrix embeddings = graph::PropagateKHops(prop, dataset.features, hops);
  Matrix reference;
  frozen.Forward(embeddings, &reference);

  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_micros = 200;
  config.queue_capacity = 4096;
  config.num_workers = 3;
  auto server_or = ServePipeline(dataset, report, hops, config);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  std::unique_ptr<BatchingServer> server = std::move(server_or).value();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  std::atomic<int> mismatches{0};
  std::atomic<int> served{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      common::Rng rng(100 + static_cast<uint64_t>(c));
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const NodeId node = static_cast<NodeId>(
            rng.UniformInt(dataset.num_nodes()));
        auto future_or = server->Submit(InferenceRequest(node));
        ASSERT_TRUE(future_or.ok()) << future_or.status().ToString();
        InferenceResponse response = std::move(future_or).value().get();
        served.fetch_add(1);
        EXPECT_EQ(response.node, node);
        auto expected = reference.Row(static_cast<int64_t>(node));
        ASSERT_EQ(response.logits.size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          if (std::abs(response.logits[j] - expected[j]) > 1e-3) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server->Shutdown();

  EXPECT_EQ(served.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(mismatches.load(), 0);
  ServeMetricsSnapshot snap = server->Metrics();
  EXPECT_EQ(snap.requests_served,
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  // Repeated nodes (200 ids, 200 requests) must have produced cache hits,
  // and misses must have moved features through the ego-net kernels.
  EXPECT_GT(snap.CacheHitRate(), 0.0);
  EXPECT_GT(snap.ops.edges_touched, 0u);
  EXPECT_GT(snap.ops.floats_moved, 0u);
}

TEST(BatchingServerTest, BackpressureRejectsWithUnavailable) {
  common::Rng rng(9);
  nn::Mlp mlp({4, 3}, 0.0, &rng);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();

  ServeConfig config;
  config.max_batch = 1;
  config.max_delay_micros = 0;
  config.queue_capacity = 2;
  config.num_workers = 1;
  BatchingServer server(
      FrozenModel::FromMlp(mlp),
      [opened](NodeId node, std::span<float> out) {
        opened.wait();  // Stall the worker until the test releases it.
        for (size_t j = 0; j < out.size(); ++j) {
          out[j] = static_cast<float>(node);
        }
        return common::Status::OK();
      },
      /*num_nodes=*/16, config);

  EXPECT_EQ(server.Submit(InferenceRequest(99)).status().code(),
            common::StatusCode::kInvalidArgument);

  std::vector<std::future<InferenceResponse>> accepted;
  int rejected = 0;
  auto submit_some = [&](int count) {
    for (int i = 0; i < count; ++i) {
      auto future_or =
          server.Submit(InferenceRequest(static_cast<NodeId>(i % 16)));
      if (future_or.ok()) {
        accepted.push_back(std::move(future_or).value());
      } else {
        // Full queue: a clean kUnavailable, never a block or a crash.
        EXPECT_EQ(future_or.status().code(),
                  common::StatusCode::kUnavailable);
        ++rejected;
      }
    }
  };
  submit_some(5);
  // Let the batcher reach its steady blocked state: one batch executing
  // (stalled in the gate), one waiting for a worker, queue full behind.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  submit_some(10);
  EXPECT_GE(rejected, 1);

  gate.set_value();  // Release the worker; everything admitted completes.
  for (auto& future : accepted) {
    InferenceResponse response = future.get();
    EXPECT_EQ(response.logits.size(), 3u);
  }
  server.Shutdown();
  ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.requests_served, accepted.size());
  EXPECT_EQ(snap.requests_rejected, static_cast<uint64_t>(rejected));
  EXPECT_EQ(snap.requests_served + snap.requests_rejected, 15u);
}

TEST(BatchingServerTest, MetricsPercentilesAndWarmupHitRate) {
  core::Dataset dataset = SmallSbmDataset(120, 21);
  const int hops = 2;
  models::ModelResult result =
      models::TrainSgc(dataset.graph, dataset.features, dataset.labels,
                       dataset.splits, QuickTrainConfig());
  ASSERT_NE(result.fitted_head, nullptr);

  KHopEmbedder embedder(dataset.graph, dataset.features, hops);
  ServeConfig config;
  config.max_batch = 16;
  config.max_delay_micros = 100;
  config.queue_capacity = 1024;
  config.num_workers = 2;
  BatchingServer server(
      FrozenModel::FromMlp(*result.fitted_head),
      [&embedder](NodeId node, std::span<float> out) {
        embedder.Embed(node, out);
        return common::Status::OK();
      },
      dataset.num_nodes(), config);

  auto run_pass = [&server](NodeId count) {
    std::vector<std::future<InferenceResponse>> futures;
    for (NodeId u = 0; u < count; ++u) {
      auto future_or = server.Submit(InferenceRequest(u));
      ASSERT_TRUE(future_or.ok());
      futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
  };
  run_pass(100);  // Warmup: all misses, fills the cache.
  run_pass(100);  // Same nodes again: hits that skip propagation.
  server.Shutdown();

  ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.requests_served, 200u);
  EXPECT_LE(snap.p50_ticks, snap.p95_ticks);
  EXPECT_LE(snap.p95_ticks, snap.p99_ticks);
  EXPECT_GT(snap.p50_ticks, 0.0);
  EXPECT_GT(snap.CacheHitRate(), 0.0);   // Acceptance: hits after warmup.
  EXPECT_GE(snap.CacheHitRate(), 0.4);   // Second pass is all hits.
  EXPECT_GE(snap.batches, 1u);
  EXPECT_LE(snap.mean_batch_size, static_cast<double>(config.max_batch));
  EXPECT_LE(snap.max_batch_size, static_cast<uint64_t>(config.max_batch));
}

TEST(ServePipelineTest, RejectsModelWithoutFittedHead) {
  core::Dataset dataset = SmallSbmDataset(60, 2);
  core::PipelineReport report;
  report.model.name = "label_prop";  // No MLP head.
  auto server_or = ServePipeline(dataset, report, 2, ServeConfig());
  EXPECT_FALSE(server_or.ok());
  EXPECT_EQ(server_or.status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(BatchingServerTest, WarmCacheServesHitsImmediately) {
  core::Dataset dataset = SmallSbmDataset(80, 31);
  models::ModelResult result =
      models::TrainSgc(dataset.graph, dataset.features, dataset.labels,
                       dataset.splits, QuickTrainConfig());
  graph::Propagator prop(dataset.graph, graph::Normalization::kSymmetric,
                         true);
  Matrix embeddings = graph::PropagateKHops(prop, dataset.features, 2);

  ServeConfig config;
  config.max_batch = 4;
  config.num_workers = 1;
  std::atomic<int> embed_calls{0};
  BatchingServer server(
      FrozenModel::FromMlp(*result.fitted_head),
      [&embed_calls](NodeId, std::span<float> out) {
        embed_calls.fetch_add(1);
        for (float& v : out) v = 0.0f;
        return common::Status::OK();
      },
      dataset.num_nodes(), config);
  server.WarmCache(embeddings);

  std::vector<std::future<InferenceResponse>> futures;
  for (NodeId u = 0; u < dataset.num_nodes(); ++u) {
    auto future_or = server.Submit(InferenceRequest(u));
    ASSERT_TRUE(future_or.ok());
    futures.push_back(std::move(future_or).value());
  }
  FrozenModel frozen = FrozenModel::FromMlp(*result.fitted_head);
  Matrix reference;
  frozen.Forward(embeddings, &reference);
  for (auto& future : futures) {
    InferenceResponse response = future.get();
    EXPECT_TRUE(response.cache_hit);
    auto expected = reference.Row(static_cast<int64_t>(response.node));
    for (size_t j = 0; j < expected.size(); ++j) {
      EXPECT_NEAR(response.logits[j], expected[j], 1e-5);
    }
  }
  EXPECT_EQ(embed_calls.load(), 0);  // Warm cache: propagation fully skipped.
  server.Shutdown();
  EXPECT_DOUBLE_EQ(server.Metrics().CacheHitRate(), 1.0);
}

}  // namespace
}  // namespace sgnn::serve
