#include <gtest/gtest.h>

#include "core/dataset.h"
#include "models/cluster_gcn.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "models/sage.h"
#include "models/saint.h"

namespace sgnn::models {
namespace {

using core::Dataset;

/// Small separable homophilous SBM: every sensible model should clear 85%
/// test accuracy here with a modest budget.
Dataset EasyDataset(uint64_t seed = 1) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 12,
                .homophily = 0.85};
  config.feature_dim = 8;
  config.feature_noise = 0.6;
  return core::MakeSbmDataset(config, seed);
}

/// Mixing-regime variant (homophily = 1/num_classes): neighbourhoods are
/// class-uninformative, so low-pass smoothing collapses features toward
/// the global mean and destroys the signal, while multi-channel spectral
/// embeddings keep the identity/high-pass signal. (A 2-class h=0 graph
/// would NOT show this: label-flipped smoothing stays linearly separable.)
Dataset HeterophilousDataset(uint64_t seed = 2) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 12,
                .homophily = 1.0 / 3.0};
  config.feature_dim = 8;
  config.feature_noise = 0.8;
  return core::MakeSbmDataset(config, seed);
}

nn::TrainConfig FastConfig() {
  nn::TrainConfig config;
  config.epochs = 60;
  config.hidden_dim = 32;
  config.patience = 20;
  config.lr = 0.02;
  return config;
}

TEST(MakeSplitsTest, PartitionsAllNodesDisjointly) {
  NodeSplits splits = MakeSplits(100, 0.6, 0.2, 7);
  EXPECT_EQ(splits.train.size(), 60u);
  EXPECT_EQ(splits.val.size(), 20u);
  EXPECT_EQ(splits.test.size(), 20u);
  std::vector<bool> seen(100, false);
  for (const auto* part : {&splits.train, &splits.val, &splits.test}) {
    for (graph::NodeId u : *part) {
      EXPECT_FALSE(seen[u]);
      seen[u] = true;
    }
  }
}

TEST(EarlyStopTrackerTest, TracksBestAndStops) {
  EarlyStopTracker tracker(2);
  EXPECT_FALSE(tracker.Update(0.5, 0.4));
  EXPECT_FALSE(tracker.Update(0.7, 0.65));  // Improves.
  EXPECT_FALSE(tracker.Update(0.6, 0.9));   // Worse (1/2).
  EXPECT_TRUE(tracker.Update(0.6, 0.9));    // Worse (2/2): stop.
  EXPECT_DOUBLE_EQ(tracker.best_val(), 0.7);
  EXPECT_DOUBLE_EQ(tracker.test_at_best(), 0.65);
}

TEST(GcnTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result =
      TrainGcn(d.graph, d.features, d.labels, d.splits, FastConfig());
  EXPECT_EQ(result.name, "gcn");
  EXPECT_GT(result.report.test_accuracy, 0.85);
  EXPECT_GT(result.ops.edges_touched, 0u);
}

TEST(GcnTest, DeterministicGivenSeed) {
  Dataset d = EasyDataset();
  nn::TrainConfig config = FastConfig();
  config.epochs = 10;
  ModelResult a = TrainGcn(d.graph, d.features, d.labels, d.splits, config);
  ModelResult b = TrainGcn(d.graph, d.features, d.labels, d.splits, config);
  EXPECT_DOUBLE_EQ(a.report.final_train_loss, b.report.final_train_loss);
  EXPECT_DOUBLE_EQ(a.report.test_accuracy, b.report.test_accuracy);
}

TEST(GcnTest, BeatsFeatureOnlyBaselineOnNoisyFeatures) {
  // When features are noisy but the graph is homophilous, propagation
  // should help: compare GCN against SGC-with-0-hops (pure MLP).
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 14,
                .homophily = 0.9};
  config.feature_dim = 8;
  config.feature_noise = 1.5;
  Dataset d = core::MakeSbmDataset(config, 5);
  ModelResult gcn =
      TrainGcn(d.graph, d.features, d.labels, d.splits, FastConfig());
  ModelResult mlp = TrainSgc(d.graph, d.features, d.labels, d.splits,
                             FastConfig(), SgcConfig{.hops = 0});
  EXPECT_GT(gcn.report.test_accuracy, mlp.report.test_accuracy + 0.05);
}

TEST(SgcTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result = TrainSgc(d.graph, d.features, d.labels, d.splits,
                                FastConfig(), SgcConfig{.hops = 2});
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(SgcTest, PropagationHelpsOnNoisyHomophilousGraphs) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 14,
                .homophily = 0.9};
  config.feature_noise = 1.5;
  Dataset d = core::MakeSbmDataset(config, 7);
  ModelResult hop0 = TrainSgc(d.graph, d.features, d.labels, d.splits,
                              FastConfig(), SgcConfig{.hops = 0});
  ModelResult hop3 = TrainSgc(d.graph, d.features, d.labels, d.splits,
                              FastConfig(), SgcConfig{.hops = 3});
  EXPECT_GT(hop3.report.test_accuracy, hop0.report.test_accuracy + 0.05);
}

TEST(AppnpTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result = TrainAppnp(d.graph, d.features, d.labels, d.splits,
                                  FastConfig());
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(SpectralDecoupledTest, SurvivesHeterophilyWhereLowPassFails) {
  // The LD2/E6 claim: under heterophily, the high-pass channel rescues
  // accuracy that pure low-pass smoothing (SGC) destroys.
  Dataset d = HeterophilousDataset();
  ModelResult sgc = TrainSgc(d.graph, d.features, d.labels, d.splits,
                             FastConfig(), SgcConfig{.hops = 4});
  ModelResult spectral = TrainSpectralDecoupled(
      d.graph, d.features, d.labels, d.splits, FastConfig());
  EXPECT_GT(spectral.report.test_accuracy,
            sgc.report.test_accuracy + 0.05);
}

TEST(SpectralDecoupledTest, LearnsHomophilousSbmToo) {
  Dataset d = EasyDataset();
  ModelResult result = TrainSpectralDecoupled(d.graph, d.features, d.labels,
                                              d.splits, FastConfig());
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(LabelPropTest, PerfectOnCleanHomophilousGraph) {
  Dataset d = EasyDataset();
  ModelResult result = TrainLabelProp(d.graph, d.features, d.labels,
                                      d.splits, FastConfig());
  EXPECT_EQ(result.name, "label_prop");
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(LabelPropTest, BeatsTrainedModelsWhenLabelsAreScarce) {
  // §3.4.2 data-efficiency claim: with 2% labels and pure-noise features,
  // propagating the labels outperforms training an MLP head on features.
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 1000, .num_classes = 2, .avg_degree = 14,
                .homophily = 0.95};
  config.feature_noise = 3.0;  // Features nearly useless.
  config.train_frac = 0.02;
  config.val_frac = 0.1;
  Dataset d = core::MakeSbmDataset(config, 31);
  ModelResult lp = TrainLabelProp(d.graph, d.features, d.labels, d.splits,
                                  FastConfig());
  ModelResult mlp = TrainSgc(d.graph, d.features, d.labels, d.splits,
                             FastConfig(), SgcConfig{.hops = 0});
  EXPECT_GT(lp.report.test_accuracy, mlp.report.test_accuracy + 0.1);
}

TEST(LabelPropTest, UselessOnUninformativeGraph) {
  // Honest negative control: at neutral mixing the graph carries no label
  // signal and label propagation collapses toward chance.
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 600, .num_classes = 3, .avg_degree = 12,
                .homophily = 1.0 / 3.0};
  Dataset d = core::MakeSbmDataset(config, 33);
  ModelResult lp = TrainLabelProp(d.graph, d.features, d.labels, d.splits,
                                  FastConfig());
  EXPECT_LT(lp.report.test_accuracy, 0.6);
}

TEST(PprgoTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result = TrainPprgo(d.graph, d.features, d.labels, d.splits,
                                  FastConfig());
  EXPECT_EQ(result.name, "pprgo");
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(PprgoTest, SmallerTopKStillWorksOnEasyData) {
  Dataset d = EasyDataset(21);
  ModelResult result =
      TrainPprgo(d.graph, d.features, d.labels, d.splits, FastConfig(),
                 PprgoConfig{.alpha = 0.2, .top_k = 8, .r_max = 1e-3});
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(SignTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result = TrainSign(d.graph, d.features, d.labels, d.splits,
                                 FastConfig());
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(SignTest, MultiHopConcatBeatsSingleHopUnderNoise) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 14,
                .homophily = 0.9};
  config.feature_noise = 1.5;
  Dataset d = core::MakeSbmDataset(config, 23);
  ModelResult hop1 = TrainSign(d.graph, d.features, d.labels, d.splits,
                               FastConfig(), SignConfig{.hops = 1});
  ModelResult hop4 = TrainSign(d.graph, d.features, d.labels, d.splits,
                               FastConfig(), SignConfig{.hops = 4});
  EXPECT_GT(hop4.report.test_accuracy, hop1.report.test_accuracy - 0.02);
}

TEST(ImplicitTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  ModelResult result = TrainImplicit(d.graph, d.features, d.labels, d.splits,
                                     FastConfig());
  EXPECT_GT(result.report.test_accuracy, 0.85);
}

TEST(SageTest, LearnsHomophilousSbmWithSampling) {
  Dataset d = EasyDataset();
  nn::TrainConfig config = FastConfig();
  config.epochs = 30;
  config.batch_size = 64;
  ModelResult result = TrainSage(d.graph, d.features, d.labels, d.splits,
                                 config, SageConfig{.fanouts = {5, 5}});
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(SageTest, LaborVariantMatchesNodeWiseQuality) {
  Dataset d = EasyDataset(9);
  nn::TrainConfig config = FastConfig();
  config.epochs = 30;
  config.batch_size = 64;
  ModelResult labor =
      TrainSage(d.graph, d.features, d.labels, d.splits, config,
                SageConfig{.fanouts = {5, 5}, .use_labor = true});
  EXPECT_EQ(labor.name, "sage_labor");
  EXPECT_GT(labor.report.test_accuracy, 0.8);
}

TEST(SaintTest, WalkSamplerLearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  nn::TrainConfig config = FastConfig();
  config.epochs = 30;
  ModelResult result = TrainSaint(d.graph, d.features, d.labels, d.splits,
                                  config);
  EXPECT_EQ(result.name, "saint_walk");
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(SaintTest, NodeSamplerLearnsToo) {
  Dataset d = EasyDataset(25);
  nn::TrainConfig config = FastConfig();
  config.epochs = 30;
  SaintConfig saint;
  saint.sampler = SaintConfig::Sampler::kNode;
  saint.node_budget = 128;
  ModelResult result = TrainSaint(d.graph, d.features, d.labels, d.splits,
                                  config, saint);
  EXPECT_EQ(result.name, "saint_node");
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(SaintTest, NormalizationDisabledStillRuns) {
  Dataset d = EasyDataset(27);
  nn::TrainConfig config = FastConfig();
  config.epochs = 15;
  SaintConfig saint;
  saint.norm_trials = 0;
  ModelResult result = TrainSaint(d.graph, d.features, d.labels, d.splits,
                                  config, saint);
  EXPECT_GT(result.report.test_accuracy, 0.7);
}

TEST(ClusterGcnTest, LearnsHomophilousSbm) {
  Dataset d = EasyDataset();
  nn::TrainConfig config = FastConfig();
  config.epochs = 40;
  ModelResult result = TrainClusterGcn(
      d.graph, d.features, d.labels, d.splits, config,
      ClusterGcnConfig{.num_parts = 8, .parts_per_batch = 2});
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(ClusterGcnTest, PeakResidentMemoryBelowFullBatchGcn) {
  // E13: partition batches bound activation memory by the batch subgraph.
  core::SbmDatasetConfig dconfig;
  dconfig.sbm = {.num_nodes = 1000, .num_classes = 4, .avg_degree = 12,
                 .homophily = 0.85};
  Dataset d = core::MakeSbmDataset(dconfig, 11);
  nn::TrainConfig config = FastConfig();
  config.epochs = 5;
  common::GlobalCounters().Reset();
  ModelResult cluster = TrainClusterGcn(
      d.graph, d.features, d.labels, d.splits, config,
      ClusterGcnConfig{.num_parts = 16, .parts_per_batch = 2});
  // The per-batch resident set must be well under a full-graph activation
  // footprint (n * hidden floats).
  EXPECT_LT(cluster.ops.peak_resident_floats,
            static_cast<uint64_t>(d.num_nodes()) *
                static_cast<uint64_t>(config.hidden_dim));
  EXPECT_GT(cluster.report.test_accuracy, 0.75);
}

TEST(ModelZooTest, AllModelsBeatMajorityClassOnEasyData) {
  Dataset d = EasyDataset(13);
  nn::TrainConfig config = FastConfig();
  config.epochs = 25;
  config.batch_size = 64;
  const double majority = 1.0 / d.num_classes + 0.15;
  std::vector<ModelResult> results;
  results.push_back(TrainGcn(d.graph, d.features, d.labels, d.splits, config));
  results.push_back(TrainSgc(d.graph, d.features, d.labels, d.splits, config));
  results.push_back(
      TrainAppnp(d.graph, d.features, d.labels, d.splits, config));
  results.push_back(TrainSpectralDecoupled(d.graph, d.features, d.labels,
                                           d.splits, config));
  results.push_back(
      TrainImplicit(d.graph, d.features, d.labels, d.splits, config));
  results.push_back(TrainSage(d.graph, d.features, d.labels, d.splits, config,
                              SageConfig{.fanouts = {5, 5}}));
  results.push_back(TrainClusterGcn(d.graph, d.features, d.labels, d.splits,
                                    config,
                                    ClusterGcnConfig{.num_parts = 8}));
  for (const ModelResult& r : results) {
    EXPECT_GT(r.report.test_accuracy, majority) << r.name;
    EXPECT_GT(r.report.epochs_run, 0) << r.name;
  }
}

}  // namespace
}  // namespace sgnn::models
