#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "common/fault.h"
#include "core/checkpoint.h"
#include "core/coarse_flow.h"
#include "core/dataset.h"
#include "core/dataset_io.h"
#include "core/pipeline.h"
#include "core/registry.h"
#include "core/stages.h"
#include "graph/metrics.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "tensor/ops.h"

namespace sgnn::core {
namespace {

Dataset SmallDataset(uint64_t seed = 1) {
  SbmDatasetConfig config;
  config.sbm = {.num_nodes = 300, .num_classes = 3, .avg_degree = 10,
                .homophily = 0.85};
  config.feature_dim = 8;
  config.feature_noise = 0.5;
  return MakeSbmDataset(config, seed);
}

nn::TrainConfig FastConfig() {
  nn::TrainConfig config;
  config.epochs = 40;
  config.hidden_dim = 32;
  config.patience = 15;
  config.lr = 0.02;
  return config;
}

TEST(DatasetTest, SbmDatasetIsConsistent) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.num_nodes(), 300u);
  EXPECT_EQ(d.labels.size(), 300u);
  EXPECT_EQ(d.features.rows(), 300);
  EXPECT_EQ(d.num_classes, 3);
  for (int label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 3);
  }
  EXPECT_EQ(d.splits.train.size() + d.splits.val.size() +
                d.splits.test.size(),
            300u);
}

TEST(DatasetTest, FeaturesCorrelateWithLabels) {
  Dataset d = SmallDataset();
  // Prototype features: the label coordinate should be largest on average.
  double own = 0.0, other = 0.0;
  for (graph::NodeId u = 0; u < d.num_nodes(); ++u) {
    auto row = d.features.Row(static_cast<int64_t>(u));
    own += row[d.labels[u]];
    other += row[(d.labels[u] + 1) % 3];
  }
  EXPECT_GT(own / d.num_nodes(), other / d.num_nodes() + 0.5);
}

TEST(DatasetTest, DeterministicGivenSeed) {
  Dataset a = SmallDataset(42);
  Dataset b = SmallDataset(42);
  EXPECT_TRUE(a.features.Equals(b.features));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.splits.train, b.splits.train);
}

TEST(DatasetTest, KarateDatasetLoads) {
  Dataset d = MakeKarateDataset(0.2, 3);
  EXPECT_EQ(d.num_nodes(), 34u);
  EXPECT_EQ(d.num_classes, 2);
  EXPECT_FALSE(d.splits.train.empty());
}

TEST(PipelineTest, ModelOnlyPipelineMatchesDirectCall) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  pipeline.SetModel("gcn", [](const graph::CsrGraph& g,
                              const tensor::Matrix& x,
                              std::span<const int> labels,
                              const models::NodeSplits& splits,
                              const nn::TrainConfig& config) {
    return models::TrainGcn(g, x, labels, splits, config);
  });
  PipelineReport report = pipeline.Run(d, FastConfig());
  models::ModelResult direct =
      models::TrainGcn(d.graph, d.features, d.labels, d.splits, FastConfig());
  EXPECT_DOUBLE_EQ(report.model.report.test_accuracy,
                   direct.report.test_accuracy);
  EXPECT_EQ(report.edges_before, report.edges_after);
}

TEST(PipelineTest, SparsifyStageReducesEdges) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  pipeline.AddEdit(MakeUniformSparsifyStage(0.5, 7))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config);
      });
  PipelineReport report = pipeline.Run(d, FastConfig());
  EXPECT_LT(report.edges_after, report.edges_before);
  EXPECT_GT(report.model.report.test_accuracy, 0.7);
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_EQ(report.stages[0].name, "sparsify:uniform");
}

TEST(PipelineTest, AnalyticsStageWidensFeatures) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  spectral::CombinedEmbeddingConfig embed;
  pipeline.AddAnalytics(MakeCombinedEmbeddingStage(embed))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config,
                                models::SgcConfig{.hops = 0});
      });
  PipelineReport report = pipeline.Run(d, FastConfig());
  EXPECT_EQ(report.feature_cols_after, 3 * report.feature_cols_before);
  EXPECT_GT(report.model.report.test_accuracy, 0.8);
}

TEST(PipelineTest, StagesComposeInOrder) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  pipeline.AddEdit(MakeUniformSparsifyStage(0.7, 3))
      .AddAnalytics(MakePprSmoothingStage(0.15, 4))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config,
                                models::SgcConfig{.hops = 0});
      });
  PipelineReport report = pipeline.Run(d, FastConfig());
  ASSERT_EQ(report.stages.size(), 3u);
  EXPECT_EQ(report.stages[0].name, "sparsify:uniform");
  EXPECT_EQ(report.stages[1].name, "analytics:ppr-smooth");
  EXPECT_GT(report.model.report.test_accuracy, 0.75);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(PipelineTest, SpectralSparsifyStagePreservesAccuracyAtHalfBudget) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  pipeline
      .AddEdit(MakeSpectralSparsifyStage(d.graph.num_edges() / 4, 11))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config);
      });
  PipelineReport report = pipeline.Run(d, FastConfig());
  EXPECT_LT(report.edges_after, report.edges_before);
  EXPECT_GT(report.model.report.test_accuracy, 0.8);
}

TEST(PipelineTest, ImplicitEmbeddingStageWorks) {
  Dataset d = SmallDataset();
  Pipeline pipeline;
  pipeline.AddAnalytics(MakeImplicitEmbeddingStage(0.8, 1e-5, 200))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config,
                                models::SgcConfig{.hops = 0});
      });
  PipelineReport report = pipeline.Run(d, FastConfig());
  EXPECT_GT(report.model.report.test_accuracy, 0.8);
}

TEST(PipelineTest, RewiringStageImprovesHeterophilousHomophily) {
  SbmDatasetConfig config;
  config.sbm = {.num_nodes = 300, .num_classes = 3, .avg_degree = 10,
                .homophily = 0.1};
  config.feature_noise = 0.2;  // Informative features for rewiring.
  Dataset d = MakeSbmDataset(config, 11);
  similarity::RewiringConfig rewire;
  rewire.add_per_node = 3;
  rewire.add_threshold = 0.8;
  rewire.remove_threshold = 0.5;
  auto stage = MakeRewiringStage(rewire);
  graph::CsrGraph edited = stage->Edit(d.graph, d.features);
  EXPECT_GT(graph::EdgeHomophily(edited, d.labels),
            graph::EdgeHomophily(d.graph, d.labels) + 0.2);
}

TEST(CoarseFlowTest, CoarseTrainingRetainsMostAccuracy) {
  SbmDatasetConfig config;
  config.sbm = {.num_nodes = 800, .num_classes = 3, .avg_degree = 12,
                .homophily = 0.9};
  config.feature_noise = 0.4;
  Dataset d = MakeSbmDataset(config, 19);
  nn::TrainConfig train = FastConfig();
  models::ModelResult direct =
      models::TrainGcn(d.graph, d.features, d.labels, d.splits, train);
  CoarseTrainResult coarse = TrainOnCoarseGraph(d, 0.3, train);
  EXPECT_LT(coarse.coarse_nodes, 300u);
  // Training on <=30% of the nodes keeps accuracy within 10 points.
  EXPECT_GT(coarse.model.report.test_accuracy,
            direct.report.test_accuracy - 0.10);
}

TEST(CoarseFlowTest, AggressiveRatioDegradesGracefully) {
  SbmDatasetConfig config;
  config.sbm = {.num_nodes = 600, .num_classes = 2, .avg_degree = 10,
                .homophily = 0.9};
  Dataset d = MakeSbmDataset(config, 23);
  nn::TrainConfig train = FastConfig();
  CoarseTrainResult mild = TrainOnCoarseGraph(d, 0.5, train);
  CoarseTrainResult aggressive = TrainOnCoarseGraph(d, 0.05, train);
  EXPECT_LT(aggressive.coarse_nodes, mild.coarse_nodes);
  // Even at 5% nodes the lifted predictor beats chance decisively.
  EXPECT_GT(aggressive.model.report.test_accuracy, 0.7);
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  Dataset d = SmallDataset(29);
  const std::string dir = ::testing::TempDir() + "/sgnn_dataset";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  auto loaded = LoadDataset(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& d2 = loaded.value();
  EXPECT_EQ(d2.num_nodes(), d.num_nodes());
  EXPECT_EQ(d2.graph.num_edges(), d.graph.num_edges());
  EXPECT_EQ(d2.labels, d.labels);
  EXPECT_EQ(d2.num_classes, d.num_classes);
  EXPECT_EQ(d2.splits.train, d.splits.train);
  EXPECT_EQ(d2.splits.test, d.splits.test);
  EXPECT_LT(tensor::MaxAbsDiff(d2.features, d.features), 1e-4);
  std::filesystem::remove_all(dir);
}

TEST(DatasetIoTest, LoadMissingDirectoryFails) {
  auto result = LoadDataset("/nonexistent/sgnn");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(DatasetIoTest, RejectsInconsistentLabelCount) {
  Dataset d = SmallDataset(31);
  const std::string dir = ::testing::TempDir() + "/sgnn_dataset_bad";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDataset(d, dir).ok());
  // Corrupt: rewrite labels with wrong count.
  std::ofstream(dir + "/labels.txt") << "2 3\n0\n1\n";
  auto result = LoadDataset(dir);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

// A two-stage pipeline (edit + analytics) with a deterministic decoupled
// head — enough structure to crash at any boundary and resume.
Pipeline MakeCheckpointedPipeline() {
  Pipeline pipeline;
  pipeline.AddEdit(MakeUniformSparsifyStage(0.7, 3))
      .AddAnalytics(MakePprSmoothingStage(0.15, 4))
      .SetModel("sgc", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& config) {
        return models::TrainSgc(g, x, labels, splits, config,
                                models::SgcConfig{.hops = 0});
      });
  return pipeline;
}

void ExpectIdenticalHeads(const models::ModelResult& a,
                          const models::ModelResult& b) {
  ASSERT_NE(a.fitted_head, nullptr);
  ASSERT_NE(b.fitted_head, nullptr);
  const auto& la = a.fitted_head->layers();
  const auto& lb = b.fitted_head->layers();
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_TRUE(la[i].weight().Equals(lb[i].weight())) << "layer " << i;
    EXPECT_TRUE(la[i].bias().Equals(lb[i].bias())) << "layer " << i;
  }
}

TEST(CheckpointTest, SnapshotRoundTripIsBitIdentical) {
  Dataset d = SmallDataset(37);
  PipelineSnapshot snap;
  snap.signature = PipelineSignature({"edit:a", "analytics:b"}, "sgc");
  snap.stages_done = 1;
  snap.stages.push_back({"edit:a", 1.25, common::OpCounters{10, 20, 30, 5}});
  snap.edges_before = d.graph.num_edges();
  snap.feature_cols_before = d.features.cols();
  snap.graph = d.graph;
  snap.features = d.features;

  const std::string path = ::testing::TempDir() + "/sgnn_snap.bin";
  ASSERT_TRUE(SaveSnapshot(snap, path).ok());
  auto loaded = LoadSnapshot(path, snap.signature);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PipelineSnapshot& got = loaded.value();
  EXPECT_EQ(got.stages_done, 1);
  ASSERT_EQ(got.stages.size(), 1u);
  EXPECT_EQ(got.stages[0].name, "edit:a");
  EXPECT_DOUBLE_EQ(got.stages[0].seconds, 1.25);
  EXPECT_EQ(got.stages[0].ops.edges_touched, 10u);
  EXPECT_EQ(got.edges_before, d.graph.num_edges());
  EXPECT_TRUE(got.features.Equals(d.features));  // Bitwise.
  EXPECT_EQ(got.graph.num_edges(), d.graph.num_edges());
  EXPECT_EQ(got.graph.neighbors(), d.graph.neighbors());
  EXPECT_EQ(got.graph.weights(), d.graph.weights());
  std::filesystem::remove(path);
}

TEST(CheckpointTest, CorruptionIsDetectedByCrc) {
  Dataset d = SmallDataset(41);
  PipelineSnapshot snap;
  snap.signature = 7;
  snap.graph = d.graph;
  snap.features = d.features;
  const std::string path = ::testing::TempDir() + "/sgnn_snap_corrupt.bin";
  ASSERT_TRUE(SaveSnapshot(snap, path).ok());

  // Flip one byte in the middle of the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(path) / 2));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  auto loaded = LoadSnapshot(path, 7);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), common::StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, ForeignPipelineSnapshotIsRejected) {
  Dataset d = SmallDataset(43);
  PipelineSnapshot snap;
  snap.signature = PipelineSignature({"edit:a"}, "sgc");
  snap.graph = d.graph;
  snap.features = d.features;
  const std::string path = ::testing::TempDir() + "/sgnn_snap_foreign.bin";
  ASSERT_TRUE(SaveSnapshot(snap, path).ok());
  auto loaded = LoadSnapshot(path, PipelineSignature({"edit:b"}, "sgc"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(LoadSnapshot(path + ".nope", 1).status().code(),
            common::StatusCode::kNotFound);
  std::filesystem::remove(path);
}

TEST(PipelineTest, CrashAfterStageThenResumeIsBitwiseIdentical) {
  Dataset d = SmallDataset(47);
  const std::string path = ::testing::TempDir() + "/sgnn_pipeline_ckpt.bin";
  std::filesystem::remove(path);

  // Ground truth: the uninterrupted run.
  PipelineReport full = MakeCheckpointedPipeline().Run(d, FastConfig());
  ASSERT_TRUE(full.status.ok());

  // Crash after stage 0 (the edit), leaving its snapshot behind.
  common::FaultInjector faults(123);
  faults.ArmAt("pipeline.after_stage", 0);
  RunContext ctx;
  ctx.checkpoint_path = path;
  ctx.faults = &faults;
  PipelineReport crashed =
      MakeCheckpointedPipeline().Run(d, FastConfig(), ctx);
  EXPECT_EQ(crashed.status.code(), common::StatusCode::kAborted);
  EXPECT_EQ(crashed.stages.size(), 1u);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume: skips the edit, recomputes the rest, matches the full run.
  ctx.faults = nullptr;
  PipelineReport resumed =
      MakeCheckpointedPipeline().Run(d, FastConfig(), ctx);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.resumed_stages, 1);
  ASSERT_EQ(resumed.stages.size(), full.stages.size());
  for (size_t i = 0; i < full.stages.size(); ++i) {
    EXPECT_EQ(resumed.stages[i].name, full.stages[i].name);
  }
  EXPECT_EQ(resumed.edges_after, full.edges_after);
  EXPECT_EQ(resumed.feature_cols_after, full.feature_cols_after);
  EXPECT_DOUBLE_EQ(resumed.model.report.best_val_accuracy,
                   full.model.report.best_val_accuracy);
  EXPECT_DOUBLE_EQ(resumed.model.report.test_accuracy,
                   full.model.report.test_accuracy);
  ExpectIdenticalHeads(resumed.model, full.model);
  std::filesystem::remove(path);
}

TEST(PipelineTest, CorruptSnapshotFallsBackToCleanRun) {
  Dataset d = SmallDataset(53);
  const std::string path = ::testing::TempDir() + "/sgnn_pipeline_bad.bin";
  std::filesystem::remove(path);

  PipelineReport full = MakeCheckpointedPipeline().Run(d, FastConfig());

  common::FaultInjector faults(5);
  faults.ArmAt("pipeline.after_stage", 0);
  RunContext ctx;
  ctx.checkpoint_path = path;
  ctx.faults = &faults;
  (void)MakeCheckpointedPipeline().Run(d, FastConfig(), ctx);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Truncate the snapshot: the CRC no longer matches.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 16);
  ctx.faults = nullptr;
  PipelineReport resumed =
      MakeCheckpointedPipeline().Run(d, FastConfig(), ctx);
  ASSERT_TRUE(resumed.status.ok());
  EXPECT_EQ(resumed.resumed_stages, 0);  // Fell back to a clean run...
  EXPECT_DOUBLE_EQ(resumed.model.report.test_accuracy,
                   full.model.report.test_accuracy);  // ...same answer.
  ExpectIdenticalHeads(resumed.model, full.model);
  std::filesystem::remove(path);
}

TEST(RegistryTest, CoversAllFigure1Branches) {
  const auto& registry = TechniqueRegistry();
  EXPECT_GE(registry.size(), 20u);
  std::set<std::string> paths;
  for (const Technique& t : registry) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_FALSE(t.description.empty());
    EXPECT_NE(t.figure1_path.find('/'), std::string::npos);
    paths.insert(t.figure1_path.substr(0, t.figure1_path.find('/')));
  }
  // The three top-level Figure-1 families plus the future-directions row.
  EXPECT_TRUE(paths.count("classic"));
  EXPECT_TRUE(paths.count("analytics"));
  EXPECT_TRUE(paths.count("editing"));
  EXPECT_TRUE(paths.count("future"));
}

TEST(RegistryTest, FindTechniqueReturnsMatch) {
  const Technique& t = FindTechnique("hub-labeling");
  EXPECT_EQ(t.name, "hub-labeling");
  EXPECT_NE(t.figure1_path.find("node-pair"), std::string::npos);
}

TEST(RegistryTest, EveryDemoRunsOnASmallDataset) {
  Dataset d = SmallDataset(17);
  for (const Technique& t : TechniqueRegistry()) {
    const std::string result = t.demo(d);
    EXPECT_FALSE(result.empty()) << t.name;
  }
}

}  // namespace
}  // namespace sgnn::core
