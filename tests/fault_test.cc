#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <future>
#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "nn/mlp.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"

namespace sgnn::common {
namespace {

// ---------------------------------------------------------------- injector

TEST(FaultInjectorTest, TokenTriggerIsSeedDeterministicAndOrderIndependent) {
  FaultInjector forward(99);
  FaultInjector backward(99);
  forward.Arm("serve.embed", 0.1);
  backward.Arm("serve.embed", 0.1);

  std::vector<bool> a, b;
  for (uint64_t t = 0; t < 2000; ++t) {
    a.push_back(forward.ShouldFail("serve.embed", t));
  }
  for (uint64_t t = 2000; t-- > 0;) {  // Reverse order: same verdicts.
    b.push_back(backward.ShouldFail("serve.embed", t));
  }
  std::reverse(b.begin(), b.end());
  EXPECT_EQ(a, b);

  const auto fails = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fails, 100u);  // ~10% of 2000 = 200; loose two-sided bound.
  EXPECT_LT(fails, 350u);
}

TEST(FaultInjectorTest, DifferentSeedsOrSitesGiveDifferentOutcomes) {
  FaultInjector a(1), b(2);
  a.Arm("x", 0.5);
  a.Arm("y", 0.5);
  b.Arm("x", 0.5);
  int seed_diff = 0, site_diff = 0;
  for (uint64_t t = 0; t < 256; ++t) {
    seed_diff += a.ShouldFail("x", t) != b.ShouldFail("x", t);
    site_diff += a.ShouldFail("x", t) != a.ShouldFail("y", t);
  }
  EXPECT_GT(seed_diff, 0);
  EXPECT_GT(site_diff, 0);
}

TEST(FaultInjectorTest, SequentialArmAtFiresExactlyOnce) {
  FaultInjector inj(7);
  inj.ArmAt("io.write", 3);
  int fired_at = -1, fires = 0;
  for (int op = 0; op < 10; ++op) {
    if (inj.ShouldFail("io.write")) {
      fired_at = op;
      ++fires;
    }
  }
  EXPECT_EQ(fired_at, 3);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(inj.OpCount("io.write"), 10);
}

TEST(FaultInjectorTest, TokenArmAtIsReplayable) {
  FaultInjector inj(7);
  inj.ArmAt("pipeline.after_stage", 2);
  EXPECT_FALSE(inj.ShouldFail("pipeline.after_stage", uint64_t{0}));
  EXPECT_TRUE(inj.ShouldFail("pipeline.after_stage", uint64_t{2}));
  EXPECT_TRUE(inj.ShouldFail("pipeline.after_stage", uint64_t{2}));
  inj.Disarm("pipeline.after_stage");
  EXPECT_FALSE(inj.ShouldFail("pipeline.after_stage", uint64_t{2}));
}

TEST(FaultInjectorTest, MaybeFailReturnsUnavailable) {
  FaultInjector inj(7);
  inj.Arm("svc", 1.0);
  const Status s = inj.MaybeFail("svc", 1);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  inj.Disarm("svc");
  EXPECT_TRUE(inj.MaybeFail("svc", 1).ok());
}

// ---------------------------------------------------------------- deadline

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_micros(), std::numeric_limits<int64_t>::max());
}

TEST(DeadlineTest, AfterExpiresOnSchedule) {
  const Deadline soon = Deadline::After(0);
  EXPECT_TRUE(soon.expired());
  const Deadline later = Deadline::After(60'000'000);  // A minute out.
  EXPECT_FALSE(later.expired());
  EXPECT_GT(later.remaining_micros(), 0);
  EXPECT_LE(later.remaining_micros(), 60'000'000);
}

// ------------------------------------------------------------------ retry

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_backoff_micros = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 500;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.BackoffMicros(1, 0), 100);
  EXPECT_EQ(policy.BackoffMicros(2, 0), 200);
  EXPECT_EQ(policy.BackoffMicros(3, 0), 400);
  EXPECT_EQ(policy.BackoffMicros(4, 0), 500);  // Capped.
  EXPECT_EQ(policy.BackoffMicros(9, 0), 500);
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_micros = 1000;
  policy.jitter = 0.2;
  for (uint64_t token = 0; token < 64; ++token) {
    const int64_t b1 = policy.BackoffMicros(1, token);
    EXPECT_EQ(b1, policy.BackoffMicros(1, token));  // Pure function.
    EXPECT_GE(b1, 800);
    EXPECT_LT(b1, 1200);
  }
  // Jitter actually varies across tokens.
  EXPECT_NE(policy.BackoffMicros(1, 1), policy.BackoffMicros(1, 2));
}

TEST(RetryPolicyTest, OnlyTransientCodesAreRetryable) {
  EXPECT_TRUE(RetryPolicy::Retryable(StatusCode::kUnavailable));
  EXPECT_TRUE(RetryPolicy::Retryable(StatusCode::kAborted));
  EXPECT_FALSE(RetryPolicy::Retryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::Retryable(StatusCode::kInternal));
  EXPECT_FALSE(RetryPolicy::Retryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(RetryPolicy::Retryable(StatusCode::kOk));
}

// ---------------------------------------------------------------- breaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresThenProbes) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.probe_interval = 4;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);

  // Open: fast-fails until every probe_interval-th call is admitted.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_TRUE(breaker.Allow());  // The probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // Only one probe in flight.

  // Probe fails: re-open (counts as another trip).
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_GT(breaker.fast_fails(), 0);
}

TEST(CircuitBreakerTest, SuccessfulProbeClosesAndResets) {
  CircuitBreaker::Config config;
  config.failure_threshold = 2;
  config.probe_interval = 1;
  CircuitBreaker breaker(config);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.Allow());  // probe_interval=1: first call probes.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Failure streak reset: one new failure does not re-trip.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, InterleavedSuccessKeepsBreakerClosed) {
  CircuitBreaker breaker;  // Default threshold 8.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(breaker.Allow());
    breaker.RecordFailure();
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

// ------------------------------------------------------------ spec parsing

TEST(ArmFromSpecTest, ArmsTokenAndProbabilityTriggers) {
  FaultInjector faults;
  ASSERT_TRUE(faults.ArmFromSpec("a.site@5;b.site=1.0").ok());
  EXPECT_FALSE(faults.ShouldFail("a.site", 4));
  EXPECT_TRUE(faults.ShouldFail("a.site", 5));
  EXPECT_FALSE(faults.ShouldFail("a.site", 6));
  EXPECT_TRUE(faults.ShouldFail("b.site", 123));
  EXPECT_TRUE(faults.ShouldFail("b.site", 456));
  EXPECT_FALSE(faults.ShouldFail("unarmed.site", 5));
}

TEST(ArmFromSpecTest, AcceptsBothSeparatorsAndSkipsEmptyEntries) {
  FaultInjector faults;
  ASSERT_TRUE(faults.ArmFromSpec(";;x@1,,y=1.0;").ok());
  EXPECT_TRUE(faults.ShouldFail("x", 1));
  EXPECT_TRUE(faults.ShouldFail("y", 0));
}

TEST(ArmFromSpecTest, MalformedEntriesAreInvalidArgument) {
  FaultInjector faults;
  EXPECT_EQ(faults.ArmFromSpec("no-trigger-marker").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.ArmFromSpec("x@notanumber").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(faults.ArmFromSpec("x=1.5").code(),
            StatusCode::kInvalidArgument);  // Probability outside [0,1].
  EXPECT_EQ(faults.ArmFromSpec("@5").code(), StatusCode::kInvalidArgument);
  // Entries before the malformed one stay armed.
  FaultInjector partial;
  EXPECT_FALSE(partial.ArmFromSpec("good@7;bad").ok());
  EXPECT_TRUE(partial.ShouldFail("good", 7));
}

TEST(ArmFromSpecTest, ArmFromEnvReadsSgnnFaults) {
  ASSERT_EQ(setenv(kFaultsEnv, "env.site@3", 1), 0);
  FaultInjector faults;
  ASSERT_TRUE(faults.ArmFromEnv().ok());
  EXPECT_TRUE(faults.ShouldFail("env.site", 3));
  EXPECT_FALSE(faults.ShouldFail("env.site", 4));
  ASSERT_EQ(unsetenv(kFaultsEnv), 0);
  FaultInjector unarmed;
  EXPECT_TRUE(unarmed.ArmFromEnv().ok());  // Unset env is a no-op.
  EXPECT_FALSE(unarmed.ShouldFail("env.site", 3));
}

// ------------------------------------------- retry x breaker interaction

/// The reconnect loop sgnn::dist's coordinator runs per dead worker,
/// reduced to its control flow: bounded retries with deterministic
/// backoff, gated by a breaker shared across the whole run.
/// `attempt_connect` returns the outcome of one respawn attempt.
Status ReconnectWithBudget(const RetryPolicy& policy, CircuitBreaker* breaker,
                           const std::function<Status()>& attempt_connect,
                           std::vector<int64_t>* backoffs = nullptr) {
  Status last = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (!breaker->Allow()) {
      // Degraded path: report, never hang on a known-bad endpoint.
      return Status::Unavailable("circuit breaker open");
    }
    last = attempt_connect();
    if (last.ok()) {
      breaker->RecordSuccess();
      return last;
    }
    breaker->RecordFailure();
    if (!RetryPolicy::Retryable(last.code())) return last;
    if (backoffs != nullptr && attempt < policy.max_attempts) {
      backoffs->push_back(
          policy.BackoffMicros(attempt, /*token=*/static_cast<uint64_t>(7)));
    }
  }
  return last;
}

TEST(RetryBreakerInteractionTest, TransientCrashesRecoverWithinBudget) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  CircuitBreaker breaker;  // Threshold 8: two crashes never trip it.
  int attempts = 0;
  std::vector<int64_t> backoffs;
  const Status s = ReconnectWithBudget(
      policy, &breaker,
      [&attempts] {
        ++attempts;
        return attempts < 3 ? Status::Unavailable("worker died") : Status::OK();
      },
      &backoffs);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Backoff between respawns is deterministic and non-decreasing.
  ASSERT_EQ(backoffs.size(), 2u);
  EXPECT_GT(backoffs[0], 0);
  EXPECT_LE(backoffs[0], backoffs[1]);
  std::vector<int64_t> replay;
  const Status replay_status = ReconnectWithBudget(
      policy, &breaker,
      [n = 0]() mutable {
        return ++n < 3 ? Status::Unavailable("worker died") : Status::OK();
      },
      &replay);
  EXPECT_TRUE(replay_status.ok());
  EXPECT_EQ(backoffs, replay);
}

TEST(RetryBreakerInteractionTest,
     RepeatedCrashRespawnCyclesOpenTheBreakerAndDegrade) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  CircuitBreaker::Config config;
  config.failure_threshold = 5;
  config.probe_interval = 1000;  // No probes within this test.
  CircuitBreaker breaker(config);
  int calls = 0;
  const auto always_crash = [&calls] {
    ++calls;
    return Status::Unavailable("worker died");
  };

  // Cycle 1: three crash-respawn attempts, budget exhausted, breaker still
  // closed (3 < 5) — the caller sees the endpoint's own error.
  Status s = ReconnectWithBudget(policy, &breaker, always_crash);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  // Cycle 2: two more crashes trip the breaker mid-cycle; the remaining
  // attempt is fast-failed without touching the endpoint.
  s = ReconnectWithBudget(policy, &breaker, always_crash);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 5);  // Not 6: the third attempt never ran.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_NE(s.ToString().find("circuit breaker open"), std::string::npos);

  // Cycle 3: fully degraded — zero endpoint calls, immediate kUnavailable
  // instead of hanging in respawn loops.
  s = ReconnectWithBudget(policy, &breaker, always_crash);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 5);
  EXPECT_GT(breaker.fast_fails(), 0);
}

TEST(RetryBreakerInteractionTest, PermanentErrorsSkipTheRetryLoop) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  CircuitBreaker breaker;
  int calls = 0;
  const Status s = ReconnectWithBudget(policy, &breaker, [&calls] {
    ++calls;
    return Status::InvalidArgument("bad spec");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // Permanent: no respawn churn.
}

}  // namespace
}  // namespace sgnn::common

// ============================ fault-injected serving =======================

namespace sgnn::serve {
namespace {

using common::FaultInjector;
using common::Status;
using common::StatusCode;
using graph::NodeId;

constexpr int64_t kEmbedDim = 8;
constexpr int kClasses = 3;

FrozenModel TestModel() {
  common::Rng rng(17);
  nn::Mlp mlp({kEmbedDim, kClasses}, /*dropout=*/0.0, &rng);
  return FrozenModel::FromMlp(mlp);
}

void FillEmbedding(NodeId node, std::span<float> out) {
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = 0.01f * static_cast<float>(node) + static_cast<float>(j);
  }
}

/// Serves every node once under seeded 10% embedder failures and returns
/// the per-node terminal status code.
std::map<NodeId, StatusCode> ServeAllNodesOnce(uint64_t seed) {
  constexpr NodeId kNodes = 400;
  FaultInjector faults(seed);
  faults.Arm("serve.embed", 0.1);

  ServeConfig config;
  config.max_batch = 16;
  config.max_delay_micros = 100;
  config.queue_capacity = 1024;
  config.num_workers = 3;
  config.update_cache = false;
  config.degraded_serving = false;  // Failures must surface as failures.
  config.breaker.failure_threshold = 1 << 20;  // Order-dependent; keep out.
  config.embed_retry.max_attempts = 2;
  config.embed_retry.base_backoff_micros = 10;

  BatchingServer server(
      TestModel(),
      [&faults](NodeId u, std::span<float> out) {
        // Token = node id: the verdict is a pure function of (seed, node),
        // independent of worker interleaving.
        SGNN_RETURN_IF_ERROR(faults.MaybeFail("serve.embed", u));
        FillEmbedding(u, out);
        return Status::OK();
      },
      kNodes, config);

  std::vector<std::future<InferenceResponse>> futures;
  for (NodeId u = 0; u < kNodes; ++u) {
    auto future = server.Submit(InferenceRequest(u));
    EXPECT_TRUE(future.ok());
    futures.push_back(std::move(future).value());
  }
  std::map<NodeId, StatusCode> outcomes;
  for (auto& future : futures) {
    InferenceResponse response = future.get();
    outcomes[response.node] = response.status.code();
  }
  server.Shutdown();
  return outcomes;
}

TEST(FaultServingTest, SeededFailuresAreDeterministicPerNode) {
  const auto run1 = ServeAllNodesOnce(0xfa11);
  const auto run2 = ServeAllNodesOnce(0xfa11);
  EXPECT_EQ(run1, run2);  // Same seed: identical per-request outcomes.

  size_t failures = 0;
  for (const auto& [node, code] : run1) {
    // Every request terminal: either served or failed-with-reason.
    EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kUnavailable);
    failures += code != StatusCode::kOk;
  }
  EXPECT_EQ(run1.size(), 400u);
  EXPECT_GT(failures, 10u);  // ~10% of 400, loosely bounded.
  EXPECT_LT(failures, 100u);

  const auto other = ServeAllNodesOnce(0x5eed);
  EXPECT_NE(run1, other);  // A different seed fails a different node set.
}

TEST(FaultServingTest, DegradedModeServesStaleRowsWhenEmbedderDies) {
  constexpr NodeId kNodes = 32;
  FaultInjector faults(3);
  faults.Arm("serve.embed", 1.0);  // Embedder is down, permanently.

  ServeConfig config;
  config.max_batch = 4;
  config.max_delay_micros = 100;
  config.max_staleness = 0;  // Anything older than this batch is stale.
  config.degraded_serving = true;
  config.breaker.failure_threshold = 1 << 20;
  config.embed_retry.max_attempts = 1;

  BatchingServer server(
      TestModel(),
      [&faults](NodeId u, std::span<float> out) {
        SGNN_RETURN_IF_ERROR(faults.MaybeFail("serve.embed", u));
        FillEmbedding(u, out);
        return Status::OK();
      },
      kNodes, config);

  tensor::Matrix warm(kNodes, kEmbedDim);
  for (NodeId u = 0; u < kNodes; ++u) FillEmbedding(u, warm.Row(u));
  server.WarmCache(warm);

  // Step 0: warmed rows have staleness 0 -> fresh hit.
  InferenceResponse first =
      server.Submit(InferenceRequest(5)).value().get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_TRUE(first.cache_hit);
  EXPECT_FALSE(first.degraded);

  // Later steps: the row is stale, the embedder fails -> degraded serve of
  // the same row, so the logits are identical.
  InferenceResponse second =
      server.Submit(InferenceRequest(5)).value().get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.degraded);
  EXPECT_EQ(second.logits, first.logits);
  EXPECT_EQ(second.predicted_class, first.predicted_class);

  const ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_GE(snap.health.degraded_serves, 1u);
  EXPECT_GE(snap.health.embed_failures, 1u);
  EXPECT_EQ(snap.health.failed_requests, 0u);
  server.Shutdown();
}

TEST(FaultServingTest, WithoutDegradedModeTheErrorSurfaces) {
  constexpr NodeId kNodes = 8;
  ServeConfig config;
  config.max_batch = 2;
  config.max_delay_micros = 100;
  config.max_staleness = 0;
  config.degraded_serving = false;
  config.breaker.failure_threshold = 1 << 20;
  config.embed_retry.max_attempts = 3;
  config.embed_retry.base_backoff_micros = 5;

  std::atomic<int> embed_calls{0};
  BatchingServer server(
      TestModel(),
      [&embed_calls](NodeId, std::span<float>) {
        ++embed_calls;
        return Status::Unavailable("embedder down");
      },
      kNodes, config);

  InferenceResponse response =
      server.Submit(InferenceRequest(2)).value().get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(response.logits.empty());
  EXPECT_EQ(embed_calls.load(), 3);  // All attempts spent.

  const ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.health.failed_requests, 1u);
  EXPECT_EQ(snap.health.embed_failures, 3u);
  EXPECT_EQ(snap.health.retries, 2u);
  server.Shutdown();
}

TEST(FaultServingTest, PermanentErrorsAreNotRetried) {
  ServeConfig config;
  config.max_delay_micros = 100;
  config.degraded_serving = false;
  std::atomic<int> embed_calls{0};
  BatchingServer server(
      TestModel(),
      [&embed_calls](NodeId, std::span<float>) {
        ++embed_calls;
        return Status::Internal("model shard corrupt");
      },
      8, config);
  InferenceResponse response =
      server.Submit(InferenceRequest(1)).value().get();
  EXPECT_EQ(response.status.code(), StatusCode::kInternal);
  EXPECT_EQ(embed_calls.load(), 1);  // No retry on a permanent error.
  server.Shutdown();
}

TEST(FaultServingTest, ExpiredRequestsResolveDeadlineExceeded) {
  ServeConfig config;
  config.max_batch = 64;
  // The batcher waits 20 ms for more requests; the deadline is 1 ms, so
  // the request expires while the batch is still forming.
  config.max_delay_micros = 20'000;
  config.deadline_micros = 1'000;

  std::atomic<int> embed_calls{0};
  BatchingServer server(
      TestModel(),
      [&embed_calls](NodeId u, std::span<float> out) {
        ++embed_calls;
        FillEmbedding(u, out);
        return Status::OK();
      },
      16, config);

  InferenceResponse response =
      server.Submit(InferenceRequest(3)).value().get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.logits.empty());
  EXPECT_EQ(embed_calls.load(), 0);  // Expired at dequeue: no work wasted.

  const ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_GE(snap.health.deadline_misses, 1u);
  EXPECT_GE(snap.health.failed_requests, 1u);
  server.Shutdown();
}

TEST(FaultServingTest, OpenBreakerFastFailsWithoutCallingEmbedder) {
  constexpr NodeId kNodes = 64;
  ServeConfig config;
  config.max_batch = 8;
  config.max_delay_micros = 100;
  config.num_workers = 1;  // Serialised batches: breaker order is stable.
  config.degraded_serving = false;
  config.embed_retry.max_attempts = 1;
  config.breaker.failure_threshold = 3;
  config.breaker.probe_interval = 1 << 20;  // No probes within this test.

  std::atomic<int> embed_calls{0};
  BatchingServer server(
      TestModel(),
      [&embed_calls](NodeId, std::span<float>) {
        ++embed_calls;
        return Status::Unavailable("embedder down");
      },
      kNodes, config);

  std::vector<std::future<InferenceResponse>> futures;
  for (NodeId u = 0; u < kNodes; ++u) {
    futures.push_back(server.Submit(InferenceRequest(u)).value());
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status.code(), StatusCode::kUnavailable);
  }
  server.Shutdown();

  // The breaker tripped after 3 failures; the remaining ~61 misses were
  // fast-failed without touching the embedder.
  EXPECT_EQ(embed_calls.load(), 3);
  const ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_GE(snap.health.breaker_trips, 1u);
  EXPECT_GE(snap.health.breaker_fast_fails, kNodes - 4u);
  EXPECT_EQ(snap.health.failed_requests, static_cast<uint64_t>(kNodes));
  EXPECT_STREQ(snap.health.breaker_state, "open");
  EXPECT_FALSE(snap.health.ToString().empty());
}

// Satellite 3: under 10% injected failures, concurrent clients, tight
// deadlines, and a mid-stream shutdown, every admitted request still gets
// exactly one terminal response — no hung futures, no lost promises.
TEST(FaultServingTest, EveryAdmittedRequestIsTerminalUnderStress) {
  constexpr NodeId kNodes = 2000;
  constexpr int kClients = 4;
  constexpr int kPerClient = 400;

  FaultInjector faults(0xdead);
  faults.Arm("serve.embed", 0.1);

  ServeConfig config;
  config.max_batch = 32;
  config.max_delay_micros = 200;
  config.queue_capacity = 256;  // Small: exercise backpressure rejects.
  config.num_workers = 3;
  config.deadline_micros = 50'000;
  config.embed_retry.max_attempts = 2;
  config.embed_retry.base_backoff_micros = 10;
  config.degraded_serving = true;

  BatchingServer server(
      TestModel(),
      [&faults](NodeId u, std::span<float> out) {
        SGNN_RETURN_IF_ERROR(faults.MaybeFail("serve.embed", u));
        FillEmbedding(u, out);
        return Status::OK();
      },
      kNodes, config);

  std::mutex mu;
  std::vector<std::future<InferenceResponse>> admitted;
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      common::Rng rng(static_cast<uint64_t>(c) + 1);
      for (int i = 0; i < kPerClient; ++i) {
        auto future = server.Submit(InferenceRequest(
            static_cast<NodeId>(rng.UniformInt(kNodes))));
        if (future.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          admitted.push_back(std::move(future).value());
        } else {
          ++rejected;
        }
      }
    });
  }
  // Shut down while clients are still submitting: late Submits fail
  // cleanly, already-admitted requests must still drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.Shutdown();
  for (auto& t : clients) t.join();

  ASSERT_FALSE(admitted.empty());
  uint64_t ok = 0, failed = 0;
  for (auto& future : admitted) {
    // A lost promise would hang here; bound the wait to fail loudly.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    InferenceResponse response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      ++failed;
      EXPECT_NE(response.status.code(), StatusCode::kOk);
    }
  }
  EXPECT_EQ(ok + failed, admitted.size());
  EXPECT_GT(ok, 0u);

  const ServeMetricsSnapshot snap = server.Metrics();
  EXPECT_EQ(snap.requests_served, ok);
  EXPECT_EQ(snap.health.failed_requests, failed);
}

}  // namespace
}  // namespace sgnn::serve
