#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "core/distributed_sim.h"
#include "core/run_context.h"
#include "dist/coordinator.h"
#include "dist/exchange.h"
#include "dist/frame.h"
#include "dist/worker.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "partition/partition.h"
#include "tensor/matrix.h"

namespace sgnn::dist {
namespace {

using common::FaultInjector;
using common::StatusCode;
using graph::CsrGraph;
using partition::Partition;
using tensor::Matrix;

CsrGraph TestGraph() { return graph::ErdosRenyi(180, 900, 17); }

Matrix TestFeatures(const CsrGraph& g, int64_t cols = 8) {
  common::Rng rng(23);
  return Matrix::Gaussian(g.num_nodes(), cols, 0.0f, 1.0f, &rng);
}

Matrix Reference(const CsrGraph& g, const Matrix& x, const DistOptions& opts) {
  graph::Propagator prop(g, opts.norm, opts.add_self_loops);
  return graph::PropagateKHops(prop, x, opts.hops);
}

std::string TempCheckpointPath(const char* tag) {
  return testing::TempDir() + "/dist_ckpt_" + tag + ".bin";
}

TEST(KillTokenTest, DistinguishesWorkerEpochAndIncarnation) {
  EXPECT_NE(KillToken(0, 0, 0), KillToken(1, 0, 0));
  EXPECT_NE(KillToken(0, 0, 0), KillToken(0, 1, 0));
  EXPECT_NE(KillToken(0, 0, 0), KillToken(0, 0, 1));
  // The token CI arms in its kill schedule: worker 1, epoch 1, first spawn.
  EXPECT_EQ(KillToken(1, 1, 0), 65537u);
}

TEST(WorkerSpecTest, SerializeParseRoundTrip) {
  WorkerSpec spec;
  spec.worker_id = 2;
  spec.num_workers = 4;
  spec.incarnation = 3;
  spec.cols = 5;
  spec.owned = {10, 12, 19};
  spec.halo = {3, 40};
  spec.offsets = {0, 2, 2, 4};
  spec.neighbors = {3, 12, 40, 10};
  spec.coefficients = {0.5f, 0.25f, 0.125f, 1.0f};
  spec.self_loop = {0.1f, 0.2f, 0.3f};
  auto parsed_or = WorkerSpec::Parse(spec.Serialize());
  ASSERT_TRUE(parsed_or.ok()) << parsed_or.status().ToString();
  const WorkerSpec& parsed = parsed_or.value();
  EXPECT_EQ(parsed.worker_id, 2);
  EXPECT_EQ(parsed.incarnation, 3);
  EXPECT_EQ(parsed.owned, spec.owned);
  EXPECT_EQ(parsed.halo, spec.halo);
  EXPECT_EQ(parsed.offsets, spec.offsets);
  EXPECT_EQ(parsed.neighbors, spec.neighbors);
  EXPECT_EQ(parsed.coefficients, spec.coefficients);
  EXPECT_EQ(parsed.self_loop, spec.self_loop);
}

TEST(WorkerSpecTest, EveryTruncationIsDataLossNeverUB) {
  WorkerSpec spec;
  spec.worker_id = 0;
  spec.num_workers = 2;
  spec.cols = 3;
  spec.owned = {0, 1};
  spec.halo = {5};
  spec.offsets = {0, 1, 2};
  spec.neighbors = {5, 0};
  spec.coefficients = {0.5f, 0.5f};
  spec.self_loop = {1.0f, 1.0f};
  const std::string full = spec.Serialize();
  ASSERT_TRUE(WorkerSpec::Parse(full).ok());
  for (size_t keep = 0; keep < full.size(); ++keep) {
    auto parsed_or = WorkerSpec::Parse(full.substr(0, keep));
    ASSERT_FALSE(parsed_or.ok()) << "accepted a " << keep << "-byte prefix";
    EXPECT_EQ(parsed_or.status().code(), StatusCode::kDataLoss);
  }
}

TEST(HaloPlanTest, MatchesSimulatedCommunicationVolume) {
  const CsrGraph g = TestGraph();
  const Partition parts = partition::LdgPartition(g, 4, 1.05, 31);
  const HaloPlan plan = BuildHaloPlan(g, parts);
  const auto sim = core::SimulateDistributedEpoch(
      g, parts, /*feature_dim=*/16, core::DistributedCostModel{});
  ASSERT_EQ(sim.workers.size(), plan.need.size());
  int64_t sim_halo_values = 0;
  for (const auto& w : sim.workers) sim_halo_values += w.halo_values;
  EXPECT_EQ(plan.halo_values(16), sim_halo_values);
  // Every node is owned exactly once, need lists are sorted remote ids.
  size_t owned_total = 0;
  for (int w = 0; w < plan.num_workers; ++w) {
    owned_total += plan.owned[w].size();
    for (const auto v : plan.need[w]) {
      EXPECT_NE(parts.part_of[v], w);
    }
    EXPECT_TRUE(std::is_sorted(plan.need[w].begin(), plan.need[w].end()));
  }
  EXPECT_EQ(owned_total, static_cast<size_t>(g.num_nodes()));
}

// The headline contract: the distributed result is bit-identical to the
// single-process Propagator at any worker count. `ctx.faults` is left
// null on purpose — when CI runs this binary under an SGNN_FAULTS kill
// schedule, the same assertions prove recovery restores bit-identity.
TEST(DistRunTest, BitIdenticalToSingleProcessAcrossWorkerCounts) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 3;
  const Matrix want = Reference(g, x, opts);
  for (const int k : {1, 2, 4}) {
    const Partition parts = partition::LdgPartition(g, k, 1.05, 31);
    core::RunContext ctx;
    DistReport report;
    auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
    ASSERT_TRUE(got_or.ok()) << "k=" << k << ": " << got_or.status().ToString();
    EXPECT_TRUE(got_or.value().Equals(want)) << "k=" << k;
    EXPECT_EQ(report.num_workers, k);
    EXPECT_EQ(report.epochs_run, opts.hops);
  }
}

TEST(DistRunTest, ZeroHopsReturnsInputUnchanged) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 0;
  FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(x));
}

TEST(DistRunTest, WorkersOwningNothingAreHarmless) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  // All nodes on worker 0; workers 1 and 2 are spawned, configured, and
  // report zero-row epochs.
  Partition parts{std::vector<int>(static_cast<size_t>(g.num_nodes()), 0), 3};
  FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(Reference(g, x, opts)));
}

TEST(DistRunTest, MeasuredHaloBytesWithinTenPercentOfSimulatedVolume) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g, /*cols=*/64);
  DistOptions opts;
  opts.hops = 2;
  const Partition parts = partition::LdgPartition(g, 4, 1.05, 31);
  FaultInjector no_faults;  // A respawn would legitimately resend halo rows.
  core::RunContext ctx;
  ctx.faults = &no_faults;
  DistReport report;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  const auto sim = core::SimulateDistributedEpoch(
      g, parts, /*feature_dim=*/64, core::DistributedCostModel{});
  int64_t sim_halo_values = 0;
  for (const auto& w : sim.workers) sim_halo_values += w.halo_values;
  ASSERT_GT(sim_halo_values, 0);
  const double simulated_bytes =
      static_cast<double>(sim_halo_values) * sizeof(float) * opts.hops;
  const double measured = static_cast<double>(report.halo_bytes);
  // Real wire bytes carry frame headers and row ids on top of the raw
  // float volume the simulator models; at dim 64 that overhead is small.
  EXPECT_GE(measured, simulated_bytes);
  EXPECT_LE(measured, 1.10 * simulated_bytes);
  EXPECT_EQ(report.halo_values_per_epoch, sim_halo_values);
}

TEST(DistRunTest, KilledWorkerIsRespawnedAndResultStaysBitIdentical) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 3;
  const Partition parts = partition::LdgPartition(g, 4, 1.05, 31);
  FaultInjector faults;
  // Kill worker 1 mid-epoch-1, first incarnation only: the respawn draws a
  // fresh token and completes.
  faults.ArmAt(kSiteWorkerKill, static_cast<int64_t>(KillToken(1, 1, 0)));
  core::RunContext ctx;
  ctx.faults = &faults;
  DistReport report;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(Reference(g, x, opts)));
  EXPECT_GE(report.respawns, 1);
}

TEST(DistRunTest, CorruptFrameIsDetectedAndRecovered) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  FaultInjector faults;
  // Worker 0's epoch-0 sends (first incarnation) all flip one payload byte
  // after the CRC is computed; the coordinator must detect kDataLoss on
  // the gather and respawn rather than ingest a poisoned row.
  faults.ArmAt(kSiteFrameCorrupt, static_cast<int64_t>(KillToken(0, 0, 0)));
  core::RunContext ctx;
  ctx.faults = &faults;
  DistReport report;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(Reference(g, x, opts)));
  EXPECT_GE(report.respawns, 1);
}

TEST(DistRunTest, TruncatedFrameIsDetectedAndRecovered) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  FaultInjector faults;
  faults.ArmAt(kSiteFrameTruncate, static_cast<int64_t>(KillToken(1, 0, 0)));
  core::RunContext ctx;
  ctx.faults = &faults;
  DistReport report;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(Reference(g, x, opts)));
  EXPECT_GE(report.respawns, 1);
}

TEST(DistRunTest, ProbabilisticKillScheduleStillConverges) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 3;
  opts.retry.max_attempts = 8;
  opts.retry.base_backoff_micros = 10;
  opts.retry.max_backoff_micros = 200;
  opts.breaker.failure_threshold = 50;
  const Partition parts = partition::LdgPartition(g, 4, 1.05, 31);
  // Each (worker, epoch, incarnation) draws an independent 25% kill
  // verdict — a pure hash of the seed and token, so the whole multi-kill
  // schedule replays identically on every run.
  FaultInjector faults(0xd15f);
  faults.Arm(kSiteWorkerKill, 0.25);
  core::RunContext ctx;
  ctx.faults = &faults;
  DistReport report;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(got_or.ok()) << got_or.status().ToString();
  EXPECT_TRUE(got_or.value().Equals(Reference(g, x, opts)));
  EXPECT_GE(report.respawns, 1);
}

TEST(DistRunTest, RespawnBudgetExhaustionFailsWithUnavailable) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  opts.retry.max_attempts = 3;
  opts.retry.base_backoff_micros = 10;
  opts.retry.max_backoff_micros = 100;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  FaultInjector faults;
  faults.Arm(kSiteWorkerKill, 1.0);  // Every incarnation of every worker dies.
  core::RunContext ctx;
  ctx.faults = &faults;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx);
  ASSERT_FALSE(got_or.ok());
  EXPECT_EQ(got_or.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got_or.status().ToString().find("respawn budget"),
            std::string::npos)
      << got_or.status().ToString();
}

TEST(DistRunTest, BreakerOpensAfterConsecutiveCrashesInsteadOfHanging) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  // A huge per-worker budget: without the breaker this schedule would
  // respawn ~100 times before failing.
  opts.retry.max_attempts = 100;
  opts.retry.base_backoff_micros = 10;
  opts.retry.max_backoff_micros = 100;
  opts.breaker.failure_threshold = 5;
  opts.breaker.probe_interval = 1000;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  FaultInjector faults;
  faults.Arm(kSiteWorkerKill, 1.0);
  core::RunContext ctx;
  ctx.faults = &faults;
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx);
  ASSERT_FALSE(got_or.ok());
  EXPECT_EQ(got_or.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got_or.status().ToString().find("circuit breaker"),
            std::string::npos)
      << got_or.status().ToString();
}

TEST(DistRunTest, CheckpointedRunResumesAfterCompletedEpochs) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  const std::string path = TempCheckpointPath("resume");
  std::remove(path.c_str());
  FaultInjector no_faults;

  // First run: 2 epochs, checkpointing each.
  DistOptions first;
  first.hops = 2;
  first.checkpoint_path = path;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  DistReport report1;
  auto first_or = RunDistributedPropagation(g, parts, x, first, ctx, &report1);
  ASSERT_TRUE(first_or.ok()) << first_or.status().ToString();
  EXPECT_EQ(report1.checkpoints_written, 2);
  EXPECT_FALSE(report1.resumed);

  // Second run wants 4 hops from the same inputs: it must restore the
  // 2-epoch snapshot and execute only epochs 2 and 3 — at a *different*
  // worker count, which bit-identity makes legal.
  const Partition parts4 = partition::LdgPartition(g, 4, 1.05, 31);
  DistOptions second;
  second.hops = 4;
  second.checkpoint_path = path;
  DistReport report2;
  auto second_or =
      RunDistributedPropagation(g, parts4, x, second, ctx, &report2);
  ASSERT_TRUE(second_or.ok()) << second_or.status().ToString();
  EXPECT_TRUE(report2.resumed);
  EXPECT_EQ(report2.epochs_restored, 2);
  EXPECT_EQ(report2.epochs_run, 2);
  EXPECT_TRUE(second_or.value().Equals(Reference(g, x, second)));
  std::remove(path.c_str());
}

TEST(DistRunTest, ResumeOfFullyCompleteCheckpointRunsNoEpochs) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  const std::string path = TempCheckpointPath("complete");
  std::remove(path.c_str());
  FaultInjector no_faults;
  DistOptions opts;
  opts.hops = 3;
  opts.checkpoint_path = path;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  ASSERT_TRUE(RunDistributedPropagation(g, parts, x, opts, ctx).ok());
  DistReport report;
  auto again_or = RunDistributedPropagation(g, parts, x, opts, ctx, &report);
  ASSERT_TRUE(again_or.ok()) << again_or.status().ToString();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.epochs_restored, 3);
  EXPECT_EQ(report.epochs_run, 0);
  EXPECT_TRUE(again_or.value().Equals(Reference(g, x, opts)));
  std::remove(path.c_str());
}

TEST(DistRunTest, ExpiredRunDeadlineFailsWithDeadlineExceeded) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  DistOptions opts;
  opts.hops = 2;
  const Partition parts = partition::LdgPartition(g, 2, 1.05, 31);
  FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  ctx.deadline = common::Deadline::After(0);
  auto got_or = RunDistributedPropagation(g, parts, x, opts, ctx);
  ASSERT_FALSE(got_or.ok());
  EXPECT_EQ(got_or.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DistRunTest, RejectsMalformedInputs) {
  const CsrGraph g = TestGraph();
  const Matrix x = TestFeatures(g);
  FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  DistOptions opts;
  // Features/graph mismatch.
  auto bad_rows = RunDistributedPropagation(
      g, partition::LdgPartition(g, 2, 1.05, 31),
      Matrix(g.num_nodes() - 1, 4), opts, ctx);
  EXPECT_EQ(bad_rows.status().code(), StatusCode::kInvalidArgument);
  // Partition does not cover the graph.
  Partition short_parts{std::vector<int>(10, 0), 2};
  auto bad_parts = RunDistributedPropagation(g, short_parts, x, opts, ctx);
  EXPECT_EQ(bad_parts.status().code(), StatusCode::kInvalidArgument);
  // Partition id out of range.
  Partition bad_ids{std::vector<int>(static_cast<size_t>(g.num_nodes()), 0),
                    2};
  bad_ids.part_of[5] = 7;
  auto bad_id = RunDistributedPropagation(g, bad_ids, x, opts, ctx);
  EXPECT_EQ(bad_id.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sgnn::dist
