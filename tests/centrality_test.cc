#include <gtest/gtest.h>

#include <numeric>

#include "graph/centrality.h"
#include "graph/generators.h"

namespace sgnn::graph {
namespace {

TEST(TrianglesTest, CompleteGraphCountsChoose3) {
  // K5 has C(5,3) = 10 triangles; each node corners C(4,2) = 6.
  CsrGraph g = Complete(5);
  EXPECT_EQ(CountTriangles(g), 10);
  for (int64_t t : TrianglesPerNode(g)) EXPECT_EQ(t, 6);
}

TEST(TrianglesTest, TreesAndCyclesHaveNone) {
  EXPECT_EQ(CountTriangles(Path(10)), 0);
  EXPECT_EQ(CountTriangles(Star(8)), 0);
  EXPECT_EQ(CountTriangles(Cycle(5)), 0);
  EXPECT_EQ(CountTriangles(Cycle(3)), 1);  // The 3-cycle IS a triangle.
}

TEST(TrianglesTest, MatchesClusteringStructureOnSbm) {
  // Homophilous SBM has more triangles than a degree-matched ER graph.
  auto sbm = StochasticBlockModel(
      SbmConfig{.num_nodes = 600, .num_classes = 3, .avg_degree = 14,
                .homophily = 0.95},
      3);
  CsrGraph er = ErdosRenyi(600, sbm.graph.num_edges() / 2, 3);
  EXPECT_GT(CountTriangles(sbm.graph), CountTriangles(er));
}

TEST(CoreNumbersTest, CompleteGraphIsOneCore) {
  auto core = CoreNumbers(Complete(6));
  for (int c : core) EXPECT_EQ(c, 5);
}

TEST(CoreNumbersTest, PathPeelsToOne) {
  auto core = CoreNumbers(Path(6));
  for (int c : core) EXPECT_EQ(c, 1);
}

TEST(CoreNumbersTest, StarHubAndLeavesAreOneCore) {
  // Peeling the leaves (degree 1) drags the hub down with them.
  auto core = CoreNumbers(Star(10));
  for (int c : core) EXPECT_EQ(c, 1);
}

TEST(CoreNumbersTest, CliqueWithTailSeparatesCores) {
  // K4 on {0,1,2,3} plus a tail 3-4-5: clique nodes have core 3, tail 1.
  EdgeListBuilder b(6);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) b.AddUndirectedEdge(u, v);
  }
  b.AddUndirectedEdge(3, 4);
  b.AddUndirectedEdge(4, 5);
  auto core = CoreNumbers(CsrGraph::FromBuilder(std::move(b)));
  EXPECT_EQ(core[0], 3);
  EXPECT_EQ(core[3], 3);
  EXPECT_EQ(core[4], 1);
  EXPECT_EQ(core[5], 1);
}

TEST(CoreNumbersTest, CoreIsAtMostDegree) {
  CsrGraph g = BarabasiAlbert(500, 4, 7);
  auto core = CoreNumbers(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(core[u], static_cast<int>(g.OutDegree(u)));
    EXPECT_GE(core[u], 1);  // BA graphs are connected with min degree >= m.
  }
}

TEST(GlobalPageRankTest, SumsToOneAndUniformOnRegularGraphs) {
  CsrGraph g = Cycle(20);
  auto pr = GlobalPageRank(g, 0.15, 1e-12);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
  for (double v : pr) EXPECT_NEAR(v, 1.0 / 20, 1e-9);
}

TEST(GlobalPageRankTest, HubOutranksLeaves) {
  auto pr = GlobalPageRank(Star(20), 0.15, 1e-12);
  for (size_t leaf = 1; leaf < pr.size(); ++leaf) {
    EXPECT_GT(pr[0], pr[leaf]);
  }
}

TEST(GlobalPageRankTest, DanglingMassRedistributed) {
  // Directed edge 0->1 only: node 1 is dangling; mass must still sum to 1.
  EdgeListBuilder b(3);
  b.AddEdge(0, 1);
  auto pr = GlobalPageRank(CsrGraph::FromBuilder(std::move(b)), 0.15, 1e-12);
  EXPECT_NEAR(std::accumulate(pr.begin(), pr.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[2]);  // 1 receives from 0; 2 only teleports.
}

TEST(ImportanceWeightsTest, AllMetricsNormalizeToOne) {
  CsrGraph g = BarabasiAlbert(300, 3, 9);
  for (auto metric :
       {ImportanceMetric::kDegree, ImportanceMetric::kCore,
        ImportanceMetric::kTriangles, ImportanceMetric::kPageRank}) {
    auto w = ImportanceWeights(g, metric);
    EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-6);
    for (double x : w) EXPECT_GE(x, 0.0);
  }
}

TEST(ImportanceWeightsTest, DegreeAndPageRankAgreeOnHubs) {
  CsrGraph g = BarabasiAlbert(500, 3, 11);
  auto by_degree = ImportanceWeights(g, ImportanceMetric::kDegree);
  auto by_pr = ImportanceWeights(g, ImportanceMetric::kPageRank);
  // The max-degree node should also be (nearly) the max-PageRank node.
  const auto hub = std::max_element(by_degree.begin(), by_degree.end()) -
                   by_degree.begin();
  const auto pr_top =
      std::max_element(by_pr.begin(), by_pr.end()) - by_pr.begin();
  EXPECT_EQ(hub, pr_top);
}

}  // namespace
}  // namespace sgnn::graph
