#include "analysis/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "core/checkpoint.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "graph/coo.h"
#include "graph/csr_graph.h"
#include "models/gcn.h"
#include "partition/partition.h"

namespace sgnn::analysis {
namespace {

using common::Status;
using common::StatusCode;
using graph::CsrGraph;
using graph::Edge;
using graph::EdgeIndex;
using graph::NodeId;
using tensor::Matrix;

// Small valid graph: a 5-node cycle with both directions stored.
CsrGraph RingGraph(NodeId n = 5) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    edges.push_back({u, (u + 1) % n, 1.0f});
    edges.push_back({(u + 1) % n, u, 1.0f});
  }
  return CsrGraph::FromEdges(n, std::move(edges));
}

// Raw copies of a graph's internals, free to corrupt.
struct RawCsr {
  NodeId n;
  std::vector<EdgeIndex> offsets;
  std::vector<NodeId> neighbors;
  std::vector<float> weights;

  explicit RawCsr(const CsrGraph& g)
      : n(g.num_nodes()),
        offsets(g.offsets().begin(), g.offsets().end()),
        neighbors(g.neighbors().begin(), g.neighbors().end()),
        weights(g.weights().begin(), g.weights().end()) {}

  Status Validate() const { return ValidateCsr(n, offsets, neighbors, weights); }
};

core::Dataset SmallDataset(uint64_t seed = 1) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 200, .num_classes = 3, .avg_degree = 8,
                .homophily = 0.85};
  config.feature_dim = 6;
  config.feature_noise = 0.5;
  return core::MakeSbmDataset(config, seed);
}

nn::TrainConfig FastConfig() {
  nn::TrainConfig config;
  config.epochs = 30;
  config.hidden_dim = 16;
  config.patience = 10;
  config.lr = 0.02;
  return config;
}

core::ModelFn GcnModel() {
  return [](const CsrGraph& g, const Matrix& x, std::span<const int> labels,
            const models::NodeSplits& splits, const nn::TrainConfig& config) {
    return models::TrainGcn(g, x, labels, splits, config);
  };
}

// ---------------------------------------------------------------- CSR --

TEST(ValidateCsrTest, ValidGraphPasses) {
  EXPECT_TRUE(Validate(RingGraph()).ok());
}

TEST(ValidateCsrTest, DetectsOffsetsSizeMismatch) {
  RawCsr raw(RingGraph());
  raw.offsets.pop_back();
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("offsets size mismatch"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsNonZeroFirstOffset) {
  RawCsr raw(RingGraph());
  raw.offsets.front() = 1;
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("offsets[0]"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsTruncatedFinalOffset) {
  RawCsr raw(RingGraph());
  raw.offsets.back() -= 1;
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("offsets[n] != num_edges"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsNonMonotoneOffsets) {
  RawCsr raw(RingGraph());
  // Bump an interior offset past its successor; keep front/back intact.
  raw.offsets[2] = raw.offsets[3] + 1;
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not monotone"), std::string::npos);
  EXPECT_NE(s.message().find("node 2"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsUnsortedAdjacency) {
  RawCsr raw(RingGraph());
  // Node 0 in the ring has neighbours {1, 4}; swapping unsorts them.
  std::swap(raw.neighbors[0], raw.neighbors[1]);
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not sorted strictly increasing"),
            std::string::npos);
}

TEST(ValidateCsrTest, DetectsDuplicateNeighbor) {
  RawCsr raw(RingGraph());
  raw.neighbors[1] = raw.neighbors[0];  // Strictly-increasing also bans dups.
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not sorted strictly increasing"),
            std::string::npos);
}

TEST(ValidateCsrTest, DetectsOutOfBoundsNeighbor) {
  RawCsr raw(RingGraph());
  raw.neighbors[3] = raw.n + 7;
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of bounds"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsMisalignedWeights) {
  RawCsr raw(RingGraph());
  raw.weights.pop_back();
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("weights misaligned"), std::string::npos);
}

TEST(ValidateCsrTest, DetectsNonFiniteWeight) {
  RawCsr raw(RingGraph());
  raw.weights[4] = std::numeric_limits<float>::quiet_NaN();
  Status s = raw.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("weight not finite"), std::string::npos);
}

// ---------------------------------------------------------- edge lists --

TEST(ValidateEdgesTest, ValidBuilderPasses) {
  graph::EdgeListBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(2, 3, 0.5f);
  EXPECT_TRUE(Validate(builder).ok());
}

TEST(ValidateEdgesTest, DetectsOutOfBoundsEndpoint) {
  std::vector<Edge> edges = {{0, 1, 1.0f}, {1, 9, 1.0f}};
  Status s = ValidateEdges(4, edges);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("edge endpoint out of bounds"),
            std::string::npos);
  EXPECT_NE(s.message().find("edge 1"), std::string::npos);
}

TEST(ValidateEdgesTest, DetectsNonFiniteWeight) {
  std::vector<Edge> edges = {
      {0, 1, std::numeric_limits<float>::infinity()}};
  Status s = ValidateEdges(4, edges);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("edge weight not finite"), std::string::npos);
}

// ------------------------------------------------------------ features --

TEST(ValidateFeaturesTest, ReportsRowAndColumnOfFirstNaN) {
  Matrix m(4, 3, 1.0f);
  m.data()[4] = std::numeric_limits<float>::quiet_NaN();  // row 1, col 1
  Status s = ValidateFeatures(m);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("row 1 col 1"), std::string::npos);
}

// ------------------------------------------------------------- dataset --

TEST(ValidateDatasetTest, GeneratedDatasetPasses) {
  EXPECT_TRUE(Validate(SmallDataset()).ok());
}

TEST(ValidateDatasetTest, DetectsLabelOutOfRange) {
  core::Dataset d = SmallDataset();
  d.labels[17] = d.num_classes;
  Status s = Validate(d);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("label out of range at node 17"),
            std::string::npos);
}

TEST(ValidateDatasetTest, DetectsFeatureRowMismatch) {
  core::Dataset d = SmallDataset();
  d.features = Matrix(d.features.rows() - 1, d.features.cols());
  Status s = Validate(d);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("features rows != num_nodes"),
            std::string::npos);
}

TEST(ValidateDatasetTest, DetectsOverlappingSplits) {
  core::Dataset d = SmallDataset();
  ASSERT_FALSE(d.splits.train.empty());
  d.splits.val.push_back(d.splits.train.front());
  Status s = Validate(d);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("splits overlap"), std::string::npos);
  EXPECT_NE(s.message().find("val"), std::string::npos);
}

TEST(ValidateDatasetTest, DetectsSplitIdOutOfBounds) {
  core::Dataset d = SmallDataset();
  d.splits.test.push_back(d.num_nodes());
  Status s = Validate(d);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("test split id out of bounds"),
            std::string::npos);
}

// ----------------------------------------------------------- partition --

TEST(ValidatePartitionTest, RandomPartitionPasses) {
  CsrGraph g = RingGraph(50);
  partition::Partition p = partition::RandomPartition(g, 4, 3);
  EXPECT_TRUE(Validate(p, g).ok());
}

TEST(ValidatePartitionTest, DetectsPartIdOutOfRange) {
  CsrGraph g = RingGraph(10);
  partition::Partition p = partition::RandomPartition(g, 2, 3);
  p.part_of[5] = 2;
  Status s = Validate(p, g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("part id out of range at node 5"),
            std::string::npos);
}

TEST(ValidatePartitionTest, DetectsIncompleteCover) {
  CsrGraph g = RingGraph(10);
  partition::Partition p = partition::RandomPartition(g, 2, 3);
  p.part_of.pop_back();
  Status s = Validate(p, g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("does not cover"), std::string::npos);
}

// ---------------------------------------------------------- checkpoint --

core::PipelineSnapshot MakeSnapshot(uint64_t signature) {
  core::PipelineSnapshot snap;
  snap.signature = signature;
  snap.stages_done = 1;
  snap.stages.push_back({"edit:test", 0.25, {}});
  snap.edges_before = 10;
  snap.feature_cols_before = 3;
  snap.graph = RingGraph();
  snap.features = Matrix(5, 3, 0.5f);
  return snap;
}

TEST(ValidateCheckpointTest, ConsistentSnapshotPasses) {
  EXPECT_TRUE(ValidateCheckpoint(MakeSnapshot(77), 77).ok());
}

TEST(ValidateCheckpointTest, DetectsSignatureMismatch) {
  Status s = ValidateCheckpoint(MakeSnapshot(77), 78);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(ValidateCheckpointTest, DetectsStageBookkeepingMismatch) {
  core::PipelineSnapshot snap = MakeSnapshot(77);
  snap.stages_done = 2;  // Claims more stages than it records.
  Status s = ValidateCheckpoint(snap, 77);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("stage bookkeeping"), std::string::npos);
}

TEST(ValidateCheckpointTest, DetectsCorruptPayloadFeatures) {
  core::PipelineSnapshot snap = MakeSnapshot(77);
  snap.features.data()[7] = std::numeric_limits<float>::quiet_NaN();
  Status s = ValidateCheckpoint(snap, 77);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not finite"), std::string::npos);
}

TEST(ValidateCheckpointTest, DetectsMisalignedPayload) {
  core::PipelineSnapshot snap = MakeSnapshot(77);
  snap.features = Matrix(4, 3, 0.5f);  // Graph has 5 nodes.
  Status s = ValidateCheckpoint(snap, 77);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("features rows != graph nodes"),
            std::string::npos);
}

TEST(ValidateCheckpointFileTest, RoundTripsAndRejectsCorruption) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_analysis_ckpt.bin")
          .string();
  core::PipelineSnapshot snap = MakeSnapshot(91);
  ASSERT_TRUE(core::SaveSnapshot(snap, path).ok());

  EXPECT_TRUE(core::ValidateCheckpointFile(path, 91).ok());
  EXPECT_EQ(core::ValidateCheckpointFile(path, 92).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(core::ValidateCheckpointFile(path + ".missing", 91).code(),
            StatusCode::kNotFound);

  // Flip a payload byte: the CRC layer must report corruption.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(40);
    f.write(&byte, 1);
  }
  EXPECT_EQ(core::ValidateCheckpointFile(path, 91).code(),
            StatusCode::kIOError);
  std::filesystem::remove(path);
}

// ------------------------------------------------- pipeline debug mode --

/// Analytics stage that deliberately emits a NaN: the between-stage
/// validator must stop the run before the model sees it.
class NanInjectorStage : public core::AnalyticsStage {
 public:
  std::string name() const override { return "nan_injector"; }
  Matrix Augment(const CsrGraph& graph, const Matrix& features) override {
    (void)graph;
    Matrix out = features;
    out.data()[0] = std::numeric_limits<float>::quiet_NaN();
    return out;
  }
};

TEST(PipelineValidationTest, ValidatedRunRecordsValidationStages) {
  core::Dataset d = SmallDataset();
  core::Pipeline pipeline;
  pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
      .SetModel("gcn", GcnModel());

  core::RunContext ctx;
  ctx.validate_stages = true;
  core::PipelineReport report = pipeline.Run(d, FastConfig(), ctx);
  ASSERT_TRUE(report.status.ok());

  // input validation + stage + stage validation + train.
  ASSERT_EQ(report.stages.size(), 4u);
  EXPECT_EQ(report.stages[0].name, "validate:input");
  EXPECT_EQ(report.stages[1].name, "sparsify:uniform");
  EXPECT_EQ(report.stages[2].name, "validate:sparsify:uniform");
  // The validator's scan is billed to the validation stage.
  EXPECT_GT(report.stages[2].ops.edges_touched, 0u);
}

TEST(PipelineValidationTest, ValidatedRunIsBitIdenticalToPlainRun) {
  core::Dataset d = SmallDataset();
  auto build = [] {
    core::Pipeline pipeline;
    pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
        .SetModel("gcn", GcnModel());
    return pipeline;
  };
  core::PipelineReport plain = build().Run(d, FastConfig());

  core::RunContext ctx;
  ctx.validate_stages = true;
  core::PipelineReport validated = build().Run(d, FastConfig(), ctx);

  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(validated.status.ok());
  EXPECT_EQ(plain.edges_after, validated.edges_after);
  EXPECT_DOUBLE_EQ(plain.model.report.test_accuracy,
                   validated.model.report.test_accuracy);
  EXPECT_DOUBLE_EQ(plain.model.report.best_val_accuracy,
                   validated.model.report.best_val_accuracy);
  EXPECT_EQ(plain.model.report.epochs_run, validated.model.report.epochs_run);
}

TEST(PipelineValidationTest, CorruptStageOutputStopsValidatedRun) {
  core::Dataset d = SmallDataset();
  core::Pipeline pipeline;
  pipeline.AddAnalytics(std::make_unique<NanInjectorStage>())
      .SetModel("gcn", GcnModel());

  core::RunContext ctx;
  ctx.validate_stages = true;
  core::PipelineReport report = pipeline.Run(d, FastConfig(), ctx);
  ASSERT_FALSE(report.status.ok());
  EXPECT_NE(report.status.message().find("after stage 'nan_injector'"),
            std::string::npos);
  EXPECT_NE(report.status.message().find("not finite"), std::string::npos);
}

TEST(PipelineValidationTest, CustomValidatorOverrides) {
  core::Dataset d = SmallDataset();
  core::Pipeline pipeline;
  pipeline.SetModel("gcn", GcnModel());

  core::RunContext ctx;
  ctx.validate_stages = true;
  ctx.stage_validator = [](const std::string& stage_name, const CsrGraph&,
                               const Matrix&) {
    return Status::Internal("rejected " + stage_name);
  };
  core::PipelineReport report = pipeline.Run(d, FastConfig(), ctx);
  ASSERT_FALSE(report.status.ok());
  EXPECT_EQ(report.status.message(), "rejected input");
}

}  // namespace
}  // namespace sgnn::analysis
