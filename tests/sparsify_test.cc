#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/propagate.h"
#include "spectral/spectrum.h"
#include "sparsify/sparsify.h"

namespace sgnn::sparsify {
namespace {

using graph::CsrGraph;
using graph::NodeId;

TEST(UniformSparsifyTest, KeepAllIsIdentityUpToWeights) {
  CsrGraph g = graph::ErdosRenyi(100, 400, 1);
  CsrGraph s = UniformSparsify(g, 1.0, false, 2);
  EXPECT_EQ(s.num_edges(), g.num_edges());
}

TEST(UniformSparsifyTest, KeepRatioApproximatelyRealized) {
  CsrGraph g = graph::ErdosRenyi(500, 4000, 3);
  for (double p : {0.25, 0.5, 0.75}) {
    CsrGraph s = UniformSparsify(g, p, false, 5);
    const double ratio = static_cast<double>(s.num_edges()) /
                         static_cast<double>(g.num_edges());
    EXPECT_NEAR(ratio, p, 0.05) << "p=" << p;
  }
}

TEST(UniformSparsifyTest, ReweightPreservesExpectedWeightedDegree) {
  CsrGraph g = graph::Complete(40);
  // Average over several seeds: reweighted degree should match original.
  double acc = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    CsrGraph s = UniformSparsify(g, 0.5, true, 100 + t);
    acc += s.WeightedDegree(0);
  }
  EXPECT_NEAR(acc / trials, g.WeightedDegree(0), 4.0);
}

TEST(UniformSparsifyTest, KeepsEdgesSymmetric) {
  CsrGraph g = graph::ErdosRenyi(80, 320, 7);
  CsrGraph s = UniformSparsify(g, 0.4, false, 9);
  for (NodeId u = 0; u < s.num_nodes(); ++u) {
    for (NodeId v : s.Neighbors(u)) EXPECT_TRUE(s.HasEdge(v, u));
  }
}

TEST(SpectralSparsifyTest, PreservesSpectralGapBetterThanUniform) {
  // The E9 spectral claim: resistance-weighted sampling preserves the
  // Laplacian quadratic form; uniform sampling of the same edge budget
  // distorts the gap more on skewed graphs.
  CsrGraph g = graph::BarabasiAlbert(600, 6, 11);
  graph::Propagator orig_prop(g, graph::Normalization::kSymmetric, false);
  const double gap_orig = spectral::SpectralGap(orig_prop, 40, 1);

  const int64_t budget = g.num_edges() / 4;  // Directed/2 = undirected draws.
  CsrGraph spectral_sparse = SpectralSparsify(g, budget, 13);
  CsrGraph uniform_sparse = UniformSparsify(
      g, static_cast<double>(spectral_sparse.num_edges()) / g.num_edges(),
      true, 13);

  graph::Propagator sp(spectral_sparse, graph::Normalization::kSymmetric,
                       false);
  graph::Propagator up(uniform_sparse, graph::Normalization::kSymmetric,
                       false);
  const double gap_spectral = spectral::SpectralGap(sp, 40, 1);
  const double gap_uniform = spectral::SpectralGap(up, 40, 1);
  EXPECT_LT(std::fabs(gap_spectral - gap_orig),
            std::fabs(gap_uniform - gap_orig) + 0.05);
}

TEST(SpectralSparsifyTest, EdgeCountBoundedBySamples) {
  CsrGraph g = graph::ErdosRenyi(300, 2400, 15);
  CsrGraph s = SpectralSparsify(g, 500, 17);
  EXPECT_LE(s.num_edges(), 2 * 500);
  EXPECT_GT(s.num_edges(), 0);
  EXPECT_EQ(s.num_nodes(), g.num_nodes());
}

TEST(SpectralSparsifyTest, TotalWeightApproximatelyPreserved) {
  CsrGraph g = graph::ErdosRenyi(200, 1600, 19);
  double orig_weight = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) orig_weight += g.WeightedDegree(u);
  CsrGraph s = SpectralSparsify(g, 2000, 21);
  double new_weight = 0.0;
  for (NodeId u = 0; u < s.num_nodes(); ++u) new_weight += s.WeightedDegree(u);
  EXPECT_NEAR(new_weight / orig_weight, 1.0, 0.15);
}

TEST(DegreeAwarePruneTest, LowDegreeNodesKeepEverything) {
  CsrGraph g = graph::Cycle(20);  // All degree 2.
  DegreeAwareStats stats;
  CsrGraph s = DegreeAwarePrune(g, 5, 1, &stats);
  EXPECT_EQ(stats.hubs, 0);
  EXPECT_EQ(s.num_edges(), g.num_edges());
}

TEST(DegreeAwarePruneTest, HubsAreTrimmed) {
  CsrGraph g = graph::Star(100);
  DegreeAwareStats stats;
  CsrGraph s = DegreeAwarePrune(g, 10, 5, &stats);
  EXPECT_EQ(stats.hubs, 1);
  // Hub wants 5 edges; every leaf (degree 1) wants its hub edge, so all
  // edges survive via the leaf side: the "either endpoint" rule protects
  // low-degree nodes from isolation (the ATP insight).
  EXPECT_EQ(s.num_edges(), g.num_edges());
}

TEST(DegreeAwarePruneTest, TrimsHubHubEdges) {
  // Two hubs connected to each other and to many leaves; hub-hub edge has
  // low weight so both hubs drop it.
  graph::EdgeListBuilder b(42);
  for (NodeId leaf = 2; leaf < 22; ++leaf) b.AddUndirectedEdge(0, leaf, 2.0f);
  for (NodeId leaf = 22; leaf < 42; ++leaf) b.AddUndirectedEdge(1, leaf, 2.0f);
  b.AddUndirectedEdge(0, 1, 0.1f);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  DegreeAwareStats stats;
  CsrGraph s = DegreeAwarePrune(g, 10, 5, &stats);
  EXPECT_EQ(stats.hubs, 2);
  EXPECT_FALSE(s.HasEdge(0, 1));
  // Leaf edges survive through the leaves.
  EXPECT_TRUE(s.HasEdge(0, 2));
  EXPECT_TRUE(s.HasEdge(1, 22));
}

TEST(ThresholdPruneTest, DropsLightEdges) {
  graph::EdgeListBuilder b(4);
  b.AddUndirectedEdge(0, 1, 1.0f);
  b.AddUndirectedEdge(1, 2, 0.2f);
  b.AddUndirectedEdge(2, 3, 0.8f);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  CsrGraph s = ThresholdPrune(g, 0.5f);
  EXPECT_TRUE(s.HasEdge(0, 1));
  EXPECT_FALSE(s.HasEdge(1, 2));
  EXPECT_TRUE(s.HasEdge(2, 3));
}

TEST(ThresholdPruneTest, ZeroThresholdKeepsAll) {
  CsrGraph g = graph::ErdosRenyi(50, 200, 23);
  EXPECT_EQ(ThresholdPrune(g, 0.0f).num_edges(), g.num_edges());
}

}  // namespace
}  // namespace sgnn::sparsify
