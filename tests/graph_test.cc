#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>
#include <string>

#include "common/counters.h"
#include "graph/coo.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/propagate.h"
#include "tensor/ops.h"

namespace sgnn::graph {
namespace {

using tensor::Matrix;

TEST(EdgeListBuilderTest, AddAndDeduplicate) {
  EdgeListBuilder b(4);
  b.AddEdge(0, 1, 1.0f);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(1, 0);
  b.Deduplicate();
  ASSERT_EQ(b.num_edges(), 2u);
  EXPECT_FLOAT_EQ(b.edges()[0].weight, 3.0f);  // Parallel weights summed.
}

TEST(EdgeListBuilderTest, SymmetrizeAddsReverses) {
  EdgeListBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.Symmetrize();
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 1));
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(EdgeListBuilderTest, SymmetrizeIsIdempotentOnSymmetricInput) {
  EdgeListBuilder b(3);
  b.AddUndirectedEdge(0, 1);
  b.Symmetrize();
  EXPECT_EQ(b.num_edges(), 2u);
}

TEST(EdgeListBuilderTest, RemoveSelfLoops) {
  EdgeListBuilder b(3);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  b.AddEdge(2, 2);
  b.RemoveSelfLoops();
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(CsrGraphTest, BuildsSortedAdjacency) {
  EdgeListBuilder b(5);
  b.AddEdge(0, 4);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  auto nbrs = g.Neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(g.OutDegree(0), 3);
  EXPECT_EQ(g.OutDegree(1), 0);
}

TEST(CsrGraphTest, HasEdgeAndWeight) {
  EdgeListBuilder b(3);
  b.AddEdge(0, 1, 2.5f);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FLOAT_EQ(g.EdgeWeight(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(g.EdgeWeight(0, 2), 0.0f);
}

TEST(CsrGraphTest, ToEdgesRoundTrips) {
  CsrGraph g = ErdosRenyi(50, 100, 1);
  CsrGraph g2 = CsrGraph::FromEdges(g.num_nodes(), g.ToEdges());
  EXPECT_EQ(g.num_edges(), g2.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.Neighbors(u);
    auto b = g2.Neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(CsrGraphTest, InducedSubgraphKeepsInternalEdgesOnly) {
  CsrGraph g = Path(6);  // 0-1-2-3-4-5
  std::vector<NodeId> nodes = {1, 2, 4};
  CsrGraph sub = g.InducedSubgraph(nodes);
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_TRUE(sub.HasEdge(0, 1));   // 1-2 survives
  EXPECT_TRUE(sub.HasEdge(1, 0));
  EXPECT_FALSE(sub.HasEdge(1, 2));  // 2-4 was not an edge
  EXPECT_EQ(sub.num_edges(), 2);
}

TEST(CsrGraphTest, WeightedDegreeSumsWeights) {
  EdgeListBuilder b(3);
  b.AddEdge(0, 1, 2.0f);
  b.AddEdge(0, 2, 0.5f);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 2.5);
}

TEST(GeneratorsTest, PathHasExpectedStructure) {
  CsrGraph g = Path(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 8);  // 4 undirected edges
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(2), 2);
}

TEST(GeneratorsTest, CycleIsTwoRegular) {
  CsrGraph g = Cycle(7);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(g.OutDegree(u), 2);
}

TEST(GeneratorsTest, StarDegrees) {
  CsrGraph g = Star(6);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.OutDegree(0), 6);
  for (NodeId u = 1; u < 7; ++u) EXPECT_EQ(g.OutDegree(u), 1);
}

TEST(GeneratorsTest, CompleteHasAllPairs) {
  CsrGraph g = Complete(5);
  EXPECT_EQ(g.num_edges(), 20);  // 5*4 directed
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.OutDegree(u), 4);
}

TEST(GeneratorsTest, GridDegreesRange) {
  CsrGraph g = Grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 2);
  EXPECT_EQ(stats.max, 4);
}

TEST(GeneratorsTest, ErdosRenyiIsSimpleSymmetricDeterministic) {
  CsrGraph g1 = ErdosRenyi(100, 300, 42);
  CsrGraph g2 = ErdosRenyi(100, 300, 42);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (NodeId u = 0; u < g1.num_nodes(); ++u) {
    EXPECT_FALSE(g1.HasEdge(u, u));
    for (NodeId v : g1.Neighbors(u)) EXPECT_TRUE(g1.HasEdge(v, u));
  }
}

TEST(GeneratorsTest, BarabasiAlbertIsSkewed) {
  CsrGraph g = BarabasiAlbert(2000, 3, 7);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GE(stats.min, 3);
  // Power-law graphs have hubs far above the mean.
  EXPECT_GT(static_cast<double>(stats.max), 5.0 * stats.mean);
}

TEST(GeneratorsTest, RmatProducesRequestedScale) {
  CsrGraph g = Rmat(1024, 5000, RmatConfig{}, 3);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_GT(g.num_edges(), 5000);  // Symmetrised, minus collisions.
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(static_cast<double>(stats.max), 3.0 * stats.mean);
}

TEST(GeneratorsTest, SbmHomophilyDialWorks) {
  for (double h : {0.1, 0.5, 0.9}) {
    SbmGraph sbm = StochasticBlockModel(
        SbmConfig{.num_nodes = 2000, .num_classes = 4, .avg_degree = 12.0,
                  .homophily = h},
        11);
    double measured = EdgeHomophily(sbm.graph, sbm.labels);
    EXPECT_NEAR(measured, h, 0.06) << "target homophily " << h;
  }
}

TEST(GeneratorsTest, SbmBalancedClasses) {
  SbmGraph sbm = StochasticBlockModel(
      SbmConfig{.num_nodes = 100, .num_classes = 4, .avg_degree = 8.0,
                .homophily = 0.7},
      5);
  std::vector<int> counts(4, 0);
  for (int label : sbm.labels) counts[label]++;
  for (int c : counts) EXPECT_EQ(c, 25);
}

TEST(GeneratorsTest, KarateClubCanonical) {
  SbmGraph karate = KarateClub();
  EXPECT_EQ(karate.graph.num_nodes(), 34u);
  EXPECT_EQ(karate.graph.num_edges(), 156);  // 78 undirected
  EXPECT_GT(EdgeHomophily(karate.graph, karate.labels), 0.8);
}

TEST(MetricsTest, DegreeStatsOnStar) {
  DegreeStats stats = ComputeDegreeStats(Star(9));
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 9);
  EXPECT_NEAR(stats.mean, 1.8, 1e-9);
}

TEST(MetricsTest, ConnectedComponentsCountsIslands) {
  EdgeListBuilder b(6);
  b.AddUndirectedEdge(0, 1);
  b.AddUndirectedEdge(2, 3);
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.count, 4);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(comps.component_of[0], comps.component_of[1]);
  EXPECT_NE(comps.component_of[0], comps.component_of[2]);
}

TEST(MetricsTest, BfsDistancesOnPath) {
  auto dist = BfsDistances(Path(5), 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(MetricsTest, BfsUnreachableIsMinusOne) {
  EdgeListBuilder b(3);
  b.AddUndirectedEdge(0, 1);
  auto dist = BfsDistances(CsrGraph::FromBuilder(std::move(b)), 0);
  EXPECT_EQ(dist[2], -1);
}

TEST(MetricsTest, DiameterOfPathIsExact) {
  EXPECT_EQ(DiameterLowerBound(Path(10), 4), 9);
}

TEST(MetricsTest, ClusteringCoefficientExtremes) {
  EXPECT_NEAR(ClusteringCoefficient(Complete(6), 100, 1), 1.0, 1e-9);
  EXPECT_NEAR(ClusteringCoefficient(Star(8), 100, 1), 0.0, 1e-9);
}

TEST(MetricsTest, ReceptiveFieldGrowsWithHops) {
  CsrGraph g = BarabasiAlbert(500, 3, 9);
  int64_t r1 = ReceptiveFieldSize(g, 0, 1);
  int64_t r2 = ReceptiveFieldSize(g, 0, 2);
  int64_t r3 = ReceptiveFieldSize(g, 0, 3);
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  EXPECT_EQ(ReceptiveFieldSize(g, 0, 0), 1);
}

TEST(MetricsTest, HomophilyOnLabeledPath) {
  CsrGraph g = Path(4);
  std::vector<int> labels = {0, 0, 1, 1};
  // Edges: (0,1) same, (1,2) diff, (2,3) same -> 2/3 of undirected edges.
  EXPECT_NEAR(EdgeHomophily(g, labels), 2.0 / 3.0, 1e-9);
}

TEST(PropagateTest, RowNormalizationAverages) {
  CsrGraph g = Star(2);  // 0-1, 0-2
  Propagator prop(g, Normalization::kRow, /*add_self_loops=*/false);
  Matrix x = Matrix::FromRows({{0}, {2}, {4}});
  Matrix out;
  prop.Apply(x, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);  // mean of leaves
  EXPECT_FLOAT_EQ(out.at(1, 0), 0.0f);
}

TEST(PropagateTest, SymmetricNormalizationMatchesHand) {
  // Path 0-1-2: degrees 1,2,1. S[0][1] = 1/sqrt(1*2).
  CsrGraph g = Path(3);
  Propagator prop(g, Normalization::kSymmetric, false);
  Matrix x = Matrix::FromRows({{1}, {0}, {0}});
  Matrix out;
  prop.Apply(x, &out);
  EXPECT_NEAR(out.at(1, 0), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(out.at(0, 0), 0.0, 1e-6);
}

TEST(PropagateTest, SelfLoopsUseRenormalizedDegrees) {
  CsrGraph g = Path(2);  // Both degree 1; with self loops degree 2.
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = Matrix::FromRows({{2}, {0}});
  Matrix out;
  prop.Apply(x, &out);
  EXPECT_NEAR(out.at(0, 0), 1.0, 1e-6);  // self: 2 * 1/2
  EXPECT_NEAR(out.at(1, 0), 1.0, 1e-6);  // neighbor: 2 / sqrt(4)
}

TEST(PropagateTest, RowStochasticRowsSumToOne) {
  CsrGraph g = ErdosRenyi(60, 200, 2);
  Propagator prop(g, Normalization::kRow, true);
  Matrix ones(60, 1, 1.0f);
  Matrix out;
  prop.Apply(ones, &out);
  for (int64_t r = 0; r < 60; ++r) {
    EXPECT_NEAR(out.at(r, 0), 1.0, 1e-5);
  }
}

TEST(PropagateTest, TransposeAgreesOnSymmetricOperator) {
  CsrGraph g = ErdosRenyi(40, 120, 5);
  Propagator prop(g, Normalization::kSymmetric, true);
  common::Rng rng(1);
  Matrix x = Matrix::Gaussian(40, 3, 0, 1, &rng);
  Matrix a, b;
  prop.Apply(x, &a);
  prop.ApplyTranspose(x, &b);
  EXPECT_LT(tensor::MaxAbsDiff(a, b), 1e-5);
}

TEST(PropagateTest, ColumnNormalizationPreservesMassOnVector) {
  // A D^-1 is column-stochastic on connected graphs: total mass preserved.
  CsrGraph g = ErdosRenyi(50, 200, 8);
  Propagator prop(g, Normalization::kColumn, true);
  std::vector<double> x(50, 0.0);
  x[3] = 1.0;
  std::vector<double> out;
  prop.ApplyVector(x, &out);
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  // Coefficients are stored as float, so allow single-precision slack.
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(PropagateTest, KHopsMatchesRepeatedApply) {
  CsrGraph g = Cycle(8);
  Propagator prop(g, Normalization::kRow, false);
  common::Rng rng(3);
  Matrix x = Matrix::Gaussian(8, 2, 0, 1, &rng);
  Matrix once, twice;
  prop.Apply(x, &once);
  prop.Apply(once, &twice);
  Matrix via_hops = PropagateKHops(prop, x, 2);
  EXPECT_LT(tensor::MaxAbsDiff(twice, via_hops), 1e-6);
}

TEST(PropagateTest, CountsEdgesTouched) {
  CsrGraph g = Cycle(10);
  Propagator prop(g, Normalization::kRow, false);
  Matrix x(10, 4, 1.0f);
  Matrix out;
  common::ScopedCounterDelta scope;
  prop.Apply(x, &out);
  EXPECT_EQ(scope.Delta().edges_touched, static_cast<uint64_t>(g.num_edges()));
}

TEST(IoTest, SaveLoadRoundTrip) {
  CsrGraph g = ErdosRenyi(30, 80, 4);
  std::string path = ::testing::TempDir() + "/graph_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  const CsrGraph& g2 = loaded.value();
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto a = g.Neighbors(u);
    auto b = g2.Neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  auto result = LoadEdgeList("/nonexistent/path/graph.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kIOError);
}

TEST(IoTest, LoadRejectsOutOfRangeIds) {
  std::string path = ::testing::TempDir() + "/bad_graph.txt";
  { std::ofstream(path) << "# nodes 3\n0 1\n0 7\n"; }
  auto result = LoadEdgeList(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, LoadInfersNodeCountWithoutHeader) {
  std::string path = ::testing::TempDir() + "/headerless.txt";
  { std::ofstream(path) << "0 5\n2 3\n"; }
  auto result = LoadEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 6u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgnn::graph
