#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dataset.h"
#include "models/graph_transformer.h"
#include "nn/attention.h"
#include "nn/loss.h"
#include "tensor/ops.h"

namespace sgnn {
namespace {

using tensor::Matrix;

TEST(AnchorAttentionTest, OutputShapeAndRowsAreConvexCombinations) {
  common::Rng rng(1);
  nn::AnchorAttention attn(4, 8, &rng);
  Matrix nodes = Matrix::Gaussian(6, 4, 0, 1, &rng);
  Matrix anchors = Matrix::Gaussian(3, 4, 0, 1, &rng);
  Matrix bias(6, 3);
  Matrix out;
  attn.Forward(nodes, anchors, bias, false, &out);
  EXPECT_EQ(out.rows(), 6);
  EXPECT_EQ(out.cols(), 8);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i]));
  }
  // Attention outputs are convex combinations of the 3 value rows, so
  // every output coordinate lies within the per-coordinate value range.
  // Extract each value row by forcing all attention onto one anchor.
  std::vector<Matrix> value_rows;
  for (int a = 0; a < 3; ++a) {
    Matrix select(6, 3, -100.0f);
    for (int64_t r = 0; r < 6; ++r) select.at(r, a) = 0.0f;
    Matrix v_out;
    attn.Forward(nodes, anchors, select, false, &v_out);
    value_rows.push_back(std::move(v_out));
  }
  for (int64_t r = 0; r < out.rows(); ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) {
      float lo = value_rows[0].at(r, c), hi = lo;
      for (int a = 1; a < 3; ++a) {
        lo = std::min(lo, value_rows[static_cast<size_t>(a)].at(r, c));
        hi = std::max(hi, value_rows[static_cast<size_t>(a)].at(r, c));
      }
      EXPECT_GE(out.at(r, c), lo - 1e-5);
      EXPECT_LE(out.at(r, c), hi + 1e-5);
    }
  }
}

TEST(AnchorAttentionTest, StrongBiasSelectsSingleAnchor) {
  common::Rng rng(2);
  nn::AnchorAttention attn(2, 4, &rng);
  Matrix nodes = Matrix::Gaussian(5, 2, 0, 1, &rng);
  Matrix anchors = Matrix::Gaussian(3, 2, 0, 1, &rng);
  // Bias forces every node to attend to anchor 1 only.
  Matrix bias(5, 3, -100.0f);
  for (int64_t r = 0; r < 5; ++r) bias.at(r, 1) = 0.0f;
  Matrix out;
  attn.Forward(nodes, anchors, bias, false, &out);
  // All rows must equal each other (all = value row of anchor 1).
  for (int64_t r = 1; r < 5; ++r) {
    for (int64_t c = 0; c < out.cols(); ++c) {
      EXPECT_NEAR(out.at(r, c), out.at(0, c), 1e-5);
    }
  }
}

TEST(AnchorAttentionTest, GradientsMatchFiniteDifference) {
  common::Rng rng(3);
  nn::AnchorAttention attn(3, 4, &rng);
  Matrix nodes = Matrix::Gaussian(4, 3, 0, 1, &rng);
  Matrix anchors = Matrix::Gaussian(3, 3, 0, 1, &rng);
  Matrix bias = Matrix::Gaussian(4, 3, 0, 0.1f, &rng);

  std::vector<int> labels = {0, 1, 2, 3};
  std::vector<graph::NodeId> rows = {0, 1, 2, 3};

  auto loss_of = [&]() {
    Matrix out;
    attn.Forward(nodes, anchors, bias, false, &out);
    return nn::SoftmaxCrossEntropy(out, labels, rows, nullptr);
  };

  Matrix out;
  attn.Forward(nodes, anchors, bias, true, &out);
  Matrix dout;
  const double base = nn::SoftmaxCrossEntropy(out, labels, rows, &dout);
  attn.ZeroGrad();
  Matrix dnodes, danchors;
  attn.Backward(dout, &dnodes, &danchors);

  auto params = attn.Params();  // {Wq, bq, Wk, bk, Wv, bv}
  const double eps = 1e-3;
  struct Probe {
    size_t param;
    int64_t r, c;
  };
  for (const Probe& probe : {Probe{0, 0, 1}, Probe{2, 2, 3}, Probe{4, 1, 0}}) {
    Matrix& value = *params[probe.param].value;
    const float saved = value.at(probe.r, probe.c);
    value.at(probe.r, probe.c) = saved + static_cast<float>(eps);
    const double bumped = loss_of();
    value.at(probe.r, probe.c) = saved;
    EXPECT_NEAR(params[probe.param].grad->at(probe.r, probe.c),
                (bumped - base) / eps, 5e-2)
        << "param " << probe.param;
  }
  // Input gradients via finite differences on a node entry and an anchor
  // entry.
  {
    const float saved = nodes.at(1, 2);
    nodes.at(1, 2) = saved + static_cast<float>(eps);
    const double bumped = loss_of();
    nodes.at(1, 2) = saved;
    EXPECT_NEAR(dnodes.at(1, 2), (bumped - base) / eps, 5e-2);
  }
  {
    const float saved = anchors.at(0, 1);
    anchors.at(0, 1) = saved + static_cast<float>(eps);
    const double bumped = loss_of();
    anchors.at(0, 1) = saved;
    EXPECT_NEAR(danchors.at(0, 1), (bumped - base) / eps, 5e-2);
  }
}

core::Dataset TransformerDataset(double feature_noise, uint64_t seed) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 500, .num_classes = 3, .avg_degree = 12,
                .homophily = 0.9};
  config.feature_dim = 8;
  config.feature_noise = feature_noise;
  return core::MakeSbmDataset(config, seed);
}

TEST(GraphTransformerTest, LearnsHomophilousSbm) {
  core::Dataset d = TransformerDataset(0.6, 5);
  nn::TrainConfig config;
  config.epochs = 80;
  config.hidden_dim = 32;
  config.lr = 0.01;
  config.patience = 25;
  auto result = models::TrainGraphTransformer(d.graph, d.features, d.labels,
                                              d.splits, config);
  EXPECT_EQ(result.name, "graph_transformer");
  EXPECT_GT(result.report.test_accuracy, 0.8);
}

TEST(GraphTransformerTest, SpdBiasCarriesStructureWhenFeaturesAreUseless) {
  // The DHIL-GT claim: with (near-)uninformative features, attention has
  // no signal without the structural bias; SPD-biased attention still
  // attends within the node's community and recovers the labels.
  core::Dataset d = TransformerDataset(/*feature_noise=*/3.0, 7);
  nn::TrainConfig config;
  config.epochs = 80;
  config.hidden_dim = 32;
  config.lr = 0.01;
  config.patience = 25;
  models::GraphTransformerConfig with_structure;  // Bias + encodings on.
  with_structure.num_anchors = 64;
  auto structured = models::TrainGraphTransformer(
      d.graph, d.features, d.labels, d.splits, config, with_structure);
  models::GraphTransformerConfig no_structure = with_structure;
  no_structure.spd_beta = 0.0;
  no_structure.spd_encoding_dim = 0;
  auto plain = models::TrainGraphTransformer(d.graph, d.features, d.labels,
                                             d.splits, config, no_structure);
  EXPECT_GT(structured.report.test_accuracy,
            plain.report.test_accuracy + 0.1);
}

TEST(GraphTransformerTest, RandomAnchorsAlsoWork) {
  core::Dataset d = TransformerDataset(0.6, 9);
  nn::TrainConfig config;
  config.epochs = 60;
  config.hidden_dim = 32;
  config.lr = 0.01;
  models::GraphTransformerConfig gt;
  gt.degree_anchors = false;
  gt.num_anchors = 48;
  auto result = models::TrainGraphTransformer(d.graph, d.features, d.labels,
                                              d.splits, config, gt);
  EXPECT_GT(result.report.test_accuracy, 0.75);
}

}  // namespace
}  // namespace sgnn
