#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/run_context.h"
#include "net/client.h"
#include "net/http.h"
#include "net/json.h"
#include "net/server.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "tensor/matrix.h"

namespace sgnn::net {
namespace {

using common::Status;
using common::StatusCode;
using graph::NodeId;
using serve::AdmissionConfig;
using serve::AdmissionQueue;
using serve::BatchingServer;
using serve::FrozenModel;
using serve::InferenceRequest;
using serve::InferenceResponse;
using serve::ServeConfig;
using serve::ShedPolicy;
using serve::ShedTier;
using serve::TenantQuota;

// ----------------------------------------------------------- HTTP parsing

TEST(HttpRequestParserTest, ParsesSimpleGetAndPostWithBody) {
  HttpRequestParser parser;
  ASSERT_TRUE(parser
                  .Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                        "POST /v1/infer HTTP/1.1\r\nContent-Length: 10\r\n"
                        "\r\n{\"node\":1}")
                  .ok());
  HttpRequest request;
  ASSERT_TRUE(parser.TakeRequest(&request));
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  ASSERT_TRUE(parser.TakeRequest(&request));
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"node\":1}");
  EXPECT_FALSE(parser.TakeRequest(&request));
  EXPECT_TRUE(parser.at_boundary());
  EXPECT_TRUE(parser.OnEof().ok());
}

TEST(HttpRequestParserTest, TruncatedRequestLineIsTornAtEof) {
  HttpRequestParser parser;
  ASSERT_TRUE(parser.Feed("GET /v1/inf").ok());  // No CRLF yet: incomplete.
  HttpRequest request;
  EXPECT_FALSE(parser.TakeRequest(&request));
  EXPECT_FALSE(parser.at_boundary());
  // A peer dying here tore the stream mid-message: kDataLoss, the same
  // taxonomy dist/frame.h applies to torn length-prefixed frames.
  EXPECT_EQ(parser.OnEof().code(), StatusCode::kDataLoss);
}

TEST(HttpRequestParserTest, OversizedStartLineIsResourceExhausted) {
  HttpLimits limits;
  limits.max_start_line_bytes = 32;
  HttpRequestParser parser(limits);
  // The limit must be policed while the line is still forming — a peer
  // that never sends CRLF cannot balloon the buffer.
  const std::string long_target(128, 'a');
  EXPECT_EQ(parser.Feed("GET /" + long_target).code(),
            StatusCode::kResourceExhausted);
  // Sticky: the framing is unrecoverable.
  EXPECT_EQ(parser.Feed("\r\n\r\n").code(), StatusCode::kResourceExhausted);
}

TEST(HttpRequestParserTest, OversizedHeaderBlockIsResourceExhausted) {
  HttpLimits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser(limits);
  const std::string big_header = "X-Padding: " + std::string(128, 'p');
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n" + big_header).code(),
            StatusCode::kResourceExhausted);
}

TEST(HttpRequestParserTest, OversizedBodyIsResourceExhausted) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  EXPECT_EQ(
      parser.Feed("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n").code(),
      StatusCode::kResourceExhausted);
}

TEST(HttpRequestParserTest, PipelinedRequestsSplitAcrossFeeds) {
  HttpRequestParser parser;
  // Three pipelined requests, fed in fragments that split mid-line and
  // mid-body — the incremental parser must reassemble all of them.
  const std::string wire =
      "POST /v1/infer HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"node\":1}"
      "POST /v1/infer HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"node\":2}"
      "GET /metrics HTTP/1.1\r\n\r\n";
  for (size_t i = 0; i < wire.size(); i += 7) {
    ASSERT_TRUE(parser.Feed(wire.substr(i, 7)).ok());
  }
  HttpRequest request;
  ASSERT_TRUE(parser.TakeRequest(&request));
  EXPECT_EQ(request.body, "{\"node\":1}");
  ASSERT_TRUE(parser.TakeRequest(&request));
  EXPECT_EQ(request.body, "{\"node\":2}");
  ASSERT_TRUE(parser.TakeRequest(&request));
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_FALSE(parser.TakeRequest(&request));
  EXPECT_TRUE(parser.OnEof().ok());
}

TEST(HttpRequestParserTest, MidBodyEofIsDataLoss) {
  HttpRequestParser parser;
  ASSERT_TRUE(
      parser.Feed("POST /v1/infer HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345")
          .ok());
  HttpRequest request;
  EXPECT_FALSE(parser.TakeRequest(&request));  // Body still short 5 bytes.
  EXPECT_EQ(parser.OnEof().code(), StatusCode::kDataLoss);
}

TEST(HttpRequestParserTest, MalformedStartLineIsInvalidArgumentAndSticky) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Feed("BOGUS\r\n\r\n").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(parser.Feed("GET / HTTP/1.1\r\n\r\n").code(),
            StatusCode::kInvalidArgument);
}

TEST(HttpRequestParserTest, ChunkedTransferCodingIsRejected) {
  HttpRequestParser parser;
  EXPECT_EQ(
      parser
          .Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(HttpResponseParserTest, EofTaxonomyMatchesRequestSide) {
  HttpResponseParser clean;
  ASSERT_TRUE(
      clean.Feed("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").ok());
  HttpResponse response;
  ASSERT_TRUE(clean.TakeResponse(&response));
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "ok");
  EXPECT_TRUE(clean.OnEof().ok());  // Closed at a boundary: clean goodbye.

  HttpResponseParser torn;
  ASSERT_TRUE(torn.Feed("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhal").ok());
  EXPECT_EQ(torn.OnEof().code(), StatusCode::kDataLoss);
}

// ------------------------------------------------------------------- JSON

TEST(JsonTest, ParsesInferRequestWithAllFields) {
  auto body = ParseInferRequest(
      R"({"node": 7, "tenant": "team-a", "deadline_micros": 5000})");
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body.value().node, 7);
  EXPECT_EQ(body.value().tenant, "team-a");
  EXPECT_EQ(body.value().deadline_micros, 5000);
}

TEST(JsonTest, RejectsUnknownKeysMissingNodeAndBadValues) {
  EXPECT_EQ(ParseInferRequest(R"({"node":1,"nodez":2})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInferRequest(R"({"tenant":"x"})").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseInferRequest(R"({"node":1,"deadline_micros":-5})").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseInferRequest("not json").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JsonTest, RenderedResponsesAreByteStable) {
  InferenceResponse ok;
  ok.status = Status::OK();
  ok.node = 7;
  ok.tenant_id = "t";
  ok.predicted_class = 1;
  ok.cache_hit = true;
  ok.degraded = false;
  ok.logits = {0.5f, 0.25f};
  ok.latency_ticks = 123;  // Deliberately excluded from the rendering.
  EXPECT_EQ(RenderInferResponse(ok),
            "{\"status\":\"ok\",\"node\":7,\"tenant\":\"t\","
            "\"predicted_class\":1,\"cache_hit\":true,\"degraded\":false,"
            "\"logits\":[0.5,0.25]}");

  InferenceResponse failed;
  failed.status = Status::Unavailable("embedder down");
  failed.node = 3;
  EXPECT_EQ(RenderInferResponse(failed),
            "{\"status\":\"unavailable\",\"node\":3,"
            "\"error\":\"embedder down\"}");
}

// -------------------------------------------------------------- admission

TEST(ShedPolicyTest, TierWalksExactStaleReject) {
  ShedPolicy policy;
  policy.reject_fill = 0.5;
  using BreakerState = common::CircuitBreaker::State;
  // Closed breaker: always exact, regardless of fill.
  EXPECT_EQ(policy.Decide(BreakerState::kClosed, 0.0), ShedTier::kExact);
  EXPECT_EQ(policy.Decide(BreakerState::kClosed, 1.0), ShedTier::kExact);
  // Open breaker: stale while the queues have room, reject once full.
  EXPECT_EQ(policy.Decide(BreakerState::kOpen, 0.0), ShedTier::kStale);
  EXPECT_EQ(policy.Decide(BreakerState::kOpen, 0.49), ShedTier::kStale);
  EXPECT_EQ(policy.Decide(BreakerState::kOpen, 0.5), ShedTier::kReject);
  EXPECT_EQ(policy.Decide(BreakerState::kOpen, 1.0), ShedTier::kReject);
  // Half-open (probing): keep serving stale, never reject outright.
  EXPECT_EQ(policy.Decide(BreakerState::kHalfOpen, 1.0), ShedTier::kStale);
}

TEST(AdmissionQueueTest, DwrrDispatchSharesMatchWeightsExactly) {
  AdmissionConfig config;
  config.tenants["a"] = TenantQuota{1.0, 1e18, 0.0};
  config.tenants["b"] = TenantQuota{2.0, 1e18, 0.0};
  config.tenants["c"] = TenantQuota{4.0, 1e18, 0.0};
  config.record_dispatch_log = true;
  AdmissionQueue queue(config);

  queue.Pause();  // Saturate: offers queue, nothing drains.
  constexpr int kPerTenant = 20;
  for (const std::string tenant : {"a", "b", "c"}) {
    for (int i = 0; i < kPerTenant; ++i) {
      InferenceRequest request(static_cast<NodeId>(i));
      request.tenant_id = tenant;
      auto tier = queue.Offer(std::move(request), /*cookie=*/0,
                              common::CircuitBreaker::State::kClosed);
      ASSERT_TRUE(tier.ok());
      EXPECT_EQ(tier.value(), ShedTier::kExact);
    }
  }
  ASSERT_EQ(queue.TotalQueued(), 3u * kPerTenant);
  queue.Resume();

  InferenceRequest request;
  uint64_t cookie = 0;
  for (int i = 0; i < 3 * kPerTenant; ++i) {
    ASSERT_TRUE(queue.PopDispatch(&request, &cookie, /*timeout_micros=*/0));
  }
  // While every tenant is backlogged, DWRR with quantum 1 serves exactly
  // weight-many requests per cycle: 5 cycles of (1 a, 2 b, 4 c) cover the
  // first 35 dispatches. Counting-based, so the shares are exact, not
  // statistical.
  const std::vector<std::string> log = queue.DispatchLog();
  ASSERT_EQ(log.size(), 3u * kPerTenant);
  std::map<std::string, int> first35;
  for (int i = 0; i < 35; ++i) ++first35[log[static_cast<size_t>(i)]];
  EXPECT_EQ(first35["a"], 5);
  EXPECT_EQ(first35["b"], 10);
  EXPECT_EQ(first35["c"], 20);
}

TEST(AdmissionQueueTest, TokenBucketRejectsWhenEmptyAndRefillsPerDispatch) {
  AdmissionConfig config;
  config.tenants["capped"] = TenantQuota{1.0, /*bucket_capacity=*/2.0,
                                         /*refill_per_dispatch=*/1.0};
  AdmissionQueue queue(config);

  auto offer = [&] {
    InferenceRequest request(0);
    request.tenant_id = "capped";
    return queue.Offer(std::move(request), 0,
                       common::CircuitBreaker::State::kClosed);
  };
  EXPECT_TRUE(offer().ok());
  EXPECT_TRUE(offer().ok());
  EXPECT_EQ(offer().status().code(), StatusCode::kResourceExhausted);

  // One dispatch event grants refill_per_dispatch tokens back — the
  // bucket clock counts dispatches, not wall time.
  InferenceRequest request;
  uint64_t cookie = 0;
  ASSERT_TRUE(queue.PopDispatch(&request, &cookie, 0));
  EXPECT_TRUE(offer().ok());
  EXPECT_EQ(offer().status().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionQueueTest, PerTenantQueueBoundIsolatesNeighbours) {
  AdmissionConfig config;
  config.per_tenant_capacity = 2;
  AdmissionQueue queue(config);
  queue.Pause();

  auto offer = [&](const std::string& tenant) {
    InferenceRequest request(0);
    request.tenant_id = tenant;
    return queue.Offer(std::move(request), 0,
                       common::CircuitBreaker::State::kClosed);
  };
  EXPECT_TRUE(offer("flood").ok());
  EXPECT_TRUE(offer("flood").ok());
  // The flooding tenant fills its own bounded FIFO...
  EXPECT_EQ(offer("flood").status().code(), StatusCode::kUnavailable);
  // ...without consuming its neighbour's admission capacity.
  EXPECT_TRUE(offer("quiet").ok());
}

TEST(AdmissionQueueTest, StaleTierMarksRequestsAndRejectTierRefuses) {
  AdmissionConfig config;
  config.per_tenant_capacity = 4;
  config.shed.reject_fill = 0.5;
  AdmissionQueue queue(config);
  queue.Pause();

  auto offer = [&](common::CircuitBreaker::State breaker) {
    return queue.Offer(InferenceRequest(1), 0, breaker);
  };
  // Open breaker, empty queues: stale tier.
  auto stale = offer(common::CircuitBreaker::State::kOpen);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value(), ShedTier::kStale);
  ASSERT_TRUE(offer(common::CircuitBreaker::State::kOpen).ok());
  // Fill is now 2/4 = reject_fill: an open breaker escalates to reject.
  EXPECT_EQ(offer(common::CircuitBreaker::State::kOpen).status().code(),
            StatusCode::kUnavailable);
  // A closed breaker at the same fill still admits exactly.
  auto exact = offer(common::CircuitBreaker::State::kClosed);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value(), ShedTier::kExact);

  queue.Resume();
  InferenceRequest request;
  uint64_t cookie = 0;
  ASSERT_TRUE(queue.PopDispatch(&request, &cookie, 0));
  EXPECT_TRUE(request.stale_only);  // The stale tier marked it.
}

TEST(AdmissionQueueTest, CloseDrainsQueuedRequestsThenStops) {
  AdmissionQueue queue(AdmissionConfig{});
  ASSERT_TRUE(queue
                  .Offer(InferenceRequest(1), 11,
                         common::CircuitBreaker::State::kClosed)
                  .ok());
  ASSERT_TRUE(queue
                  .Offer(InferenceRequest(2), 22,
                         common::CircuitBreaker::State::kClosed)
                  .ok());
  queue.Close();
  EXPECT_EQ(queue
                .Offer(InferenceRequest(3), 33,
                       common::CircuitBreaker::State::kClosed)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  InferenceRequest request;
  uint64_t cookie = 0;
  ASSERT_TRUE(queue.PopDispatch(&request, &cookie, 0));
  EXPECT_EQ(cookie, 11u);
  ASSERT_TRUE(queue.PopDispatch(&request, &cookie, 0));
  EXPECT_EQ(cookie, 22u);
  EXPECT_FALSE(queue.PopDispatch(&request, &cookie, 0));
}

// ------------------------------------------------------- loopback harness

constexpr int64_t kEmbedDim = 8;
constexpr int kClasses = 3;
constexpr NodeId kNodes = 64;

FrozenModel TestModel() {
  common::Rng rng(17);
  nn::Mlp mlp({kEmbedDim, kClasses}, /*dropout=*/0.0, &rng);
  return FrozenModel::FromMlp(mlp);
}

void FillEmbedding(NodeId node, std::span<float> out) {
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = 0.01f * static_cast<float>(node) + static_cast<float>(j);
  }
}

ServeConfig QuickServeConfig() {
  ServeConfig config;
  config.max_batch = 1;
  config.max_delay_micros = 0;
  config.queue_capacity = 1024;
  config.num_workers = 1;
  return config;
}

std::string InferBody(NodeId node, const std::string& tenant = "") {
  std::string body = "{\"node\":" + std::to_string(node);
  if (!tenant.empty()) body += ",\"tenant\":\"" + tenant + "\"";
  return body + "}";
}

HttpClient Dial(uint16_t port) {
  auto client = HttpClient::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

/// Polls `predicate` for up to ~2 seconds.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// --------------------------------------------------------- front door e2e

TEST(HttpFrontDoorTest, ServesInferMetricsHealthzAndErrors) {
  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());
  HttpFrontDoor door(&server, HttpFrontDoorConfig{});
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  auto infer = client.Post("/v1/infer", InferBody(3));
  ASSERT_TRUE(infer.ok()) << infer.status().ToString();
  EXPECT_EQ(infer.value().status_code, 200);
  EXPECT_NE(infer.value().body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(infer.value().body.find("\"node\":3"), std::string::npos);
  EXPECT_NE(infer.value().body.find("\"logits\":["), std::string::npos);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status_code, 200);
  EXPECT_NE(metrics.value().body.find("sgnn_net_http_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("sgnn_net_infer_admitted_total 1"),
            std::string::npos);

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status_code, 200);
  EXPECT_EQ(health.value().body, "ok\n");

  auto missing = client.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status_code, 404);
  auto wrong_method = client.Post("/healthz", "{}");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status_code, 405);
  auto bad_json = client.Post("/v1/infer", "{\"node\":");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().status_code, 400);
  auto bad_node = client.Post("/v1/infer", InferBody(kNodes + 100));
  ASSERT_TRUE(bad_node.ok());
  EXPECT_EQ(bad_node.value().status_code, 400);  // Out of the id universe.
  EXPECT_NE(bad_node.value().body.find("invalid_argument"),
            std::string::npos);
}

TEST(HttpFrontDoorTest, PipelinedInferResponsesArriveInRequestOrder) {
  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());
  HttpFrontDoor door(&server, HttpFrontDoorConfig{});
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  const std::vector<NodeId> nodes = {5, 1, 9, 1, 5};
  for (NodeId node : nodes) {
    ASSERT_TRUE(client
                    .SendRequest("POST", "/v1/infer", InferBody(node),
                                 "application/json")
                    .ok());
  }
  for (NodeId node : nodes) {
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status_code, 200);
    EXPECT_NE(response.value().body.find(
                  "\"node\":" + std::to_string(node) + ","),
              std::string::npos);
  }
}

TEST(HttpFrontDoorTest, ResponsesBitIdenticalToInProcessSubmit) {
  // Two identical servers (same seed, same embedder): one serves
  // in-process futures, the other sits behind the front door. The same
  // request stream must produce byte-identical JSON bodies, including
  // cache_hit transitions — the shared renderer excludes only latency.
  auto embed = [](NodeId node, std::span<float> out) {
    FillEmbedding(node, out);
    return Status::OK();
  };
  BatchingServer in_process(TestModel(), embed, kNodes, QuickServeConfig());
  BatchingServer behind_http(TestModel(), embed, kNodes, QuickServeConfig());
  HttpFrontDoor door(&behind_http, HttpFrontDoorConfig{});
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  const std::vector<NodeId> stream = {0, 7, 13, 0, 7, 13, 13, 0};
  for (NodeId node : stream) {
    auto future = in_process.Submit(InferenceRequest(node));
    ASSERT_TRUE(future.ok());
    const std::string expected =
        RenderInferResponse(std::move(future).value().get());

    auto response = client.Post("/v1/infer", InferBody(node));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status_code, 200);
    EXPECT_EQ(response.value().body, expected) << "node " << node;
  }
}

TEST(HttpFrontDoorTest, WeightedFairSharesUnderSaturation) {
  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());

  HttpFrontDoorConfig config;
  config.admission.tenants["a"] = TenantQuota{1.0, 1e18, 0.0};
  config.admission.tenants["b"] = TenantQuota{2.0, 1e18, 0.0};
  config.admission.tenants["c"] = TenantQuota{4.0, 1e18, 0.0};
  config.admission.record_dispatch_log = true;
  HttpFrontDoor door(&server, config);
  ASSERT_TRUE(door.Start().ok());

  // Saturate: pause dispatch, then pipeline 40 requests per tenant over
  // three real loopback connections.
  door.admission().Pause();
  constexpr int kPerTenant = 40;
  std::map<std::string, HttpClient> clients;
  for (const std::string tenant : {"a", "b", "c"}) {
    clients.emplace(tenant, Dial(door.port()));
    for (int i = 0; i < kPerTenant; ++i) {
      ASSERT_TRUE(clients.at(tenant)
                      .SendRequest("POST", "/v1/infer",
                                   InferBody(static_cast<NodeId>(i % kNodes),
                                             tenant),
                                   "application/json")
                      .ok());
    }
  }
  ASSERT_TRUE(WaitFor(
      [&] { return door.admission().TotalQueued() == 3u * kPerTenant; }))
      << "only " << door.admission().TotalQueued() << " requests queued";
  door.admission().Resume();

  for (auto& [tenant, client] : clients) {
    for (int i = 0; i < kPerTenant; ++i) {
      auto response = client.ReadResponse();
      ASSERT_TRUE(response.ok())
          << tenant << "#" << i << ": " << response.status().ToString();
      EXPECT_EQ(response.value().status_code, 200);
      EXPECT_NE(response.value().body.find("\"tenant\":\"" + tenant + "\""),
                std::string::npos);
    }
  }

  // While all three tenants were backlogged (the first 10 DWRR cycles =
  // 70 dispatches), the dequeue shares must match the 1:2:4 weights. The
  // schedule is counting-based, so the shares are exact — well inside the
  // 10% acceptance band.
  const std::vector<std::string> log = door.admission().DispatchLog();
  ASSERT_EQ(log.size(), 3u * kPerTenant);
  std::map<std::string, int> prefix;
  for (int i = 0; i < 70; ++i) ++prefix[log[static_cast<size_t>(i)]];
  EXPECT_EQ(prefix["a"], 10);
  EXPECT_EQ(prefix["b"], 20);
  EXPECT_EQ(prefix["c"], 40);
}

TEST(HttpFrontDoorTest, ShedTiersDegradeExactToStaleToReject) {
  // An embedder with a kill switch: healthy first (to trip nothing and
  // warm the cache), then permanently down (to trip the breaker).
  std::atomic<bool> embedder_down{false};
  ServeConfig serve_config = QuickServeConfig();
  serve_config.breaker.failure_threshold = 2;
  serve_config.embed_retry.max_attempts = 1;
  serve_config.degraded_serving = false;  // Failures must trip, not degrade.
  // Rows go stale after one batch, so a stale-tier serve of a cached row
  // is observably degraded rather than a fresh hit.
  serve_config.max_staleness = 0;
  BatchingServer server(
      TestModel(),
      [&embedder_down](NodeId node, std::span<float> out) {
        if (embedder_down.load()) return Status::Unavailable("embedder down");
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, serve_config);

  HttpFrontDoorConfig config;
  config.admission.per_tenant_capacity = 4;
  config.admission.shed.reject_fill = 0.5;
  HttpFrontDoor door(&server, config);
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  // Tier 1 — exact: healthy serve, caches node 1's row.
  auto exact = client.Post("/v1/infer", InferBody(1));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().status_code, 200);
  EXPECT_NE(exact.value().body.find("\"degraded\":false"), std::string::npos);
  EXPECT_TRUE(door.Healthy());

  // Kill the embedder; two uncached nodes trip the breaker.
  embedder_down.store(true);
  for (NodeId node : {NodeId{2}, NodeId{3}}) {
    auto failed = client.Post("/v1/infer", InferBody(node));
    ASSERT_TRUE(failed.ok());
    EXPECT_EQ(failed.value().status_code, 503);
    EXPECT_NE(failed.value().body.find("unavailable"), std::string::npos);
  }
  ASSERT_EQ(server.breaker_state(), common::CircuitBreaker::State::kOpen);

  // Tier 2 — stale: the open breaker degrades admission to stale-only;
  // node 1's cached row still serves, flagged degraded.
  auto stale = client.Post("/v1/infer", InferBody(1));
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().status_code, 200);
  EXPECT_NE(stale.value().body.find("\"degraded\":true"), std::string::npos);
  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status_code, 503);
  EXPECT_NE(health.value().body.find("shed_tier=stale"), std::string::npos);

  // Tier 3 — reject: open breaker + queues at reject_fill turn requests
  // away at the door. Pause dispatch so the fill holds still. The probe
  // uses its own connection: responses are written in request order per
  // connection, so anything pipelined behind the two held requests would
  // (correctly) wait for them.
  door.admission().Pause();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client
                    .SendRequest("POST", "/v1/infer", InferBody(1),
                                 "application/json")
                    .ok());
  }
  ASSERT_TRUE(WaitFor([&] { return door.admission().TotalQueued() == 2; }));
  HttpClient probe = Dial(door.port());
  auto rejected = probe.Post("/v1/infer", InferBody(1));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status_code, 503);
  EXPECT_NE(rejected.value().body.find("load shed"), std::string::npos);
  auto health_reject = probe.Get("/healthz");
  ASSERT_TRUE(health_reject.ok());
  EXPECT_EQ(health_reject.value().status_code, 503);
  EXPECT_NE(health_reject.value().body.find("shed_tier=reject"),
            std::string::npos);

  // Draining the backlog de-escalates reject back to stale.
  door.admission().Resume();
  for (int i = 0; i < 2; ++i) {
    auto drained = client.ReadResponse();
    ASSERT_TRUE(drained.ok());
    EXPECT_EQ(drained.value().status_code, 200);
    EXPECT_NE(drained.value().body.find("\"degraded\":true"),
              std::string::npos);
  }
}

TEST(HttpFrontDoorTest, TenantQuotaRejects429) {
  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());
  HttpFrontDoorConfig config;
  config.admission.tenants["capped"] =
      TenantQuota{1.0, /*bucket_capacity=*/1.0, /*refill_per_dispatch=*/0.0};
  HttpFrontDoor door(&server, config);
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  auto first = client.Post("/v1/infer", InferBody(1, "capped"));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().status_code, 200);
  auto second = client.Post("/v1/infer", InferBody(2, "capped"));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().status_code, 429);
  EXPECT_NE(second.value().body.find("resource_exhausted"),
            std::string::npos);
  // The anonymous tenant is not billed against "capped"'s bucket.
  auto other = client.Post("/v1/infer", InferBody(3));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value().status_code, 200);
}

TEST(HttpFrontDoorTest, HealthzFlipsOnInjectedTornReadsAndRecovers) {
  common::FaultInjector faults(7);
  // Tear connection 1's first read mid-message.
  faults.ArmAt(kSiteReadTrunc,
               static_cast<int64_t>(ReadToken(/*conn_id=*/1, /*read_seq=*/0)));
  core::RunContext ctx;
  ctx.faults = &faults;

  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());
  HttpFrontDoorConfig config;
  config.torn_read_threshold = 1;
  HttpFrontDoor door(&server, config, ctx);
  ASSERT_TRUE(door.Start().ok());

  HttpClient probe = Dial(door.port());  // conn 0
  auto healthy = probe.Get("/healthz");
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy.value().status_code, 200);

  // conn 1: its first read is torn by the injector; the server closes the
  // connection without answering (clean close from the client's side — it
  // had no response bytes in flight).
  HttpClient victim = Dial(door.port());
  ASSERT_TRUE(
      victim.SendRequest("POST", "/v1/infer", InferBody(1), "application/json")
          .ok());
  auto torn = victim.ReadResponse();
  EXPECT_FALSE(torn.ok());

  // The torn stream flips /healthz; probes are observers and do not reset
  // the streak, so the 503 stays visible across consecutive probes.
  ASSERT_TRUE(WaitFor([&] { return !door.Healthy(); }));
  for (int i = 0; i < 2; ++i) {
    auto unhealthy = probe.Get("/healthz");
    ASSERT_TRUE(unhealthy.ok());
    EXPECT_EQ(unhealthy.value().status_code, 503);
    EXPECT_NE(unhealthy.value().body.find("torn_streak=1"),
              std::string::npos);
  }

  // Any successfully parsed request proves the stream is healthy again.
  auto good = probe.Post("/v1/infer", InferBody(1));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().status_code, 200);
  auto recovered = probe.Get("/healthz");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().status_code, 200);
}

TEST(HttpFrontDoorTest, InjectedAcceptFaultDropsOneConnection) {
  common::FaultInjector faults(7);
  faults.ArmAt(kSiteAcceptFail, 1);  // Drop the second accepted connection.
  core::RunContext ctx;
  ctx.faults = &faults;

  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig());
  HttpFrontDoor door(&server, HttpFrontDoorConfig{}, ctx);
  ASSERT_TRUE(door.Start().ok());

  HttpClient first = Dial(door.port());
  ASSERT_TRUE(first.Get("/healthz").ok());

  // The dropped connection establishes at the TCP level (the kernel
  // completed the handshake) but the front door closes it immediately.
  HttpClient dropped = Dial(door.port());
  ASSERT_TRUE(dropped
                  .SendRequest("GET", "/healthz", "", "application/json")
                  .ok());
  EXPECT_FALSE(dropped.ReadResponse().ok());

  // The listener keeps accepting, and accept faults do not mark the
  // service unhealthy — no stream was torn mid-message.
  HttpClient third = Dial(door.port());
  auto health = third.Get("/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status_code, 200);
}

TEST(HttpFrontDoorTest, SharedRegistryExposesNetAndServeSeries) {
  obs::MetricsRegistry registry;
  core::RunContext ctx;
  ctx.metrics = &registry;

  BatchingServer server(
      TestModel(),
      [](NodeId node, std::span<float> out) {
        FillEmbedding(node, out);
        return Status::OK();
      },
      kNodes, QuickServeConfig(), ctx);
  HttpFrontDoor door(&server, HttpFrontDoorConfig{}, ctx);
  ASSERT_TRUE(door.Start().ok());
  HttpClient client = Dial(door.port());

  ASSERT_TRUE(client.Post("/v1/infer", InferBody(4)).ok());
  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& body = metrics.value().body;
  // One registry, one scrape: the net series and the serve series the
  // front door fronts arrive in the same exposition.
  EXPECT_NE(body.find("sgnn_net_accepted_total"), std::string::npos);
  EXPECT_NE(body.find("sgnn_net_dispatches_total 1"), std::string::npos);
  EXPECT_NE(body.find("sgnn_serve_requests_served_total"),
            std::string::npos);
  EXPECT_NE(body.find("sgnn_serve_latency_ticks"), std::string::npos);
}

}  // namespace
}  // namespace sgnn::net
