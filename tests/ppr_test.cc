#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/propagate.h"
#include "ppr/feature_propagation.h"
#include "ppr/ppr.h"
#include "tensor/ops.h"

namespace sgnn::ppr {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

TEST(ForwardPushTest, MassIsAtMostOneAndNonNegative) {
  CsrGraph g = graph::ErdosRenyi(200, 800, 1);
  PushResult result = ForwardPush(g, 0, 0.2, 1e-5);
  double total = 0.0;
  for (const auto& [v, mass] : result.estimate) {
    EXPECT_GT(mass, 0.0);
    total += mass;
  }
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.5);  // Small r_max recovers most of the mass.
}

TEST(ForwardPushTest, SourceHasLargestMassOnRegularGraph) {
  CsrGraph g = graph::Cycle(30);
  PushResult result = ForwardPush(g, 5, 0.3, 1e-7);
  double source_mass = 0.0, max_other = 0.0;
  for (const auto& [v, mass] : result.estimate) {
    if (v == 5) {
      source_mass = mass;
    } else {
      max_other = std::max(max_other, mass);
    }
  }
  EXPECT_GT(source_mass, max_other);
}

TEST(ForwardPushTest, IsolatedSourceKeepsAllMass) {
  CsrGraph g(3);  // No edges at all.
  PushResult result = ForwardPush(g, 1, 0.2, 1e-4);
  ASSERT_EQ(result.estimate.size(), 1u);
  EXPECT_EQ(result.estimate[0].first, 1u);
  EXPECT_NEAR(result.estimate[0].second, 1.0, 1e-12);
}

TEST(ForwardPushTest, ErrorBoundedByRmaxTimesDegree) {
  CsrGraph g = graph::ErdosRenyi(100, 400, 3);
  const double alpha = 0.2, r_max = 1e-4;
  PushResult push = ForwardPush(g, 7, alpha, r_max);
  auto exact = PowerIterationPpr(g, 7, alpha, 1e-12, 5000);
  std::vector<double> approx(g.num_nodes(), 0.0);
  for (const auto& [v, mass] : push.estimate) approx[v] = mass;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double bound =
        r_max * std::max<double>(1.0, static_cast<double>(g.OutDegree(v)));
    EXPECT_LE(std::fabs(exact[v] - approx[v]), bound + 1e-9)
        << "node " << v;
  }
}

TEST(ForwardPushTest, SmallerRmaxTouchesMoreEdgesAndIsMoreAccurate) {
  CsrGraph g = graph::BarabasiAlbert(1000, 4, 5);
  auto exact = PowerIterationPpr(g, 0, 0.2, 1e-12, 5000);
  double prev_err = 1e9;
  int64_t prev_edges = 0;
  for (double r_max : {1e-2, 1e-4, 1e-6}) {
    PushResult push = ForwardPush(g, 0, 0.2, r_max);
    std::vector<double> approx(g.num_nodes(), 0.0);
    for (const auto& [v, mass] : push.estimate) approx[v] = mass;
    double err = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      err += std::fabs(exact[v] - approx[v]);
    }
    EXPECT_LT(err, prev_err);
    EXPECT_GT(push.edges_touched, prev_edges);
    prev_err = err;
    prev_edges = push.edges_touched;
  }
}

TEST(ForwardPushTest, PushIsSublinearForLooseRmax) {
  // The E3 claim: at loose precision, push touches far fewer edges than a
  // single full power-iteration sweep.
  CsrGraph g = graph::Rmat(1 << 14, 1 << 16, graph::RmatConfig{}, 2);
  PushResult push = ForwardPush(g, 0, 0.2, 1e-3);
  EXPECT_LT(push.edges_touched, g.num_edges() / 4);
}

TEST(PowerIterationTest, SumsToOne) {
  CsrGraph g = graph::ErdosRenyi(80, 320, 9);
  auto pi = PowerIterationPpr(g, 3, 0.15, 1e-12, 5000);
  EXPECT_NEAR(std::accumulate(pi.begin(), pi.end(), 0.0), 1.0, 1e-9);
}

TEST(PowerIterationTest, AlphaOneHalfOnTriangleMatchesClosedForm) {
  // Complete graph K3, alpha=0.5: by symmetry pi(source) solves
  // p = 0.5 + 0.5*(1-p) => p = 2/3... derive numerically instead: check
  // symmetry and ordering only.
  CsrGraph g = graph::Complete(3);
  auto pi = PowerIterationPpr(g, 0, 0.5, 1e-14, 10000);
  EXPECT_NEAR(pi[1], pi[2], 1e-12);
  EXPECT_GT(pi[0], pi[1]);
  EXPECT_NEAR(pi[0] + pi[1] + pi[2], 1.0, 1e-10);
}

TEST(PowerIterationTest, RestartProbabilityScalesSourceMass) {
  CsrGraph g = graph::Cycle(20);
  auto lo = PowerIterationPpr(g, 0, 0.1, 1e-12, 5000);
  auto hi = PowerIterationPpr(g, 0, 0.9, 1e-12, 5000);
  EXPECT_GT(hi[0], lo[0]);  // Larger alpha concentrates mass at source.
}

TEST(MonteCarloTest, ConvergesToPowerIteration) {
  CsrGraph g = graph::ErdosRenyi(60, 240, 11);
  auto exact = PowerIterationPpr(g, 2, 0.25, 1e-12, 5000);
  auto mc = MonteCarloPpr(g, 2, 0.25, 200000, 13);
  double err = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) err += std::fabs(exact[v] - mc[v]);
  EXPECT_LT(err, 0.05);  // L1 error shrinks as 1/sqrt(walks).
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  CsrGraph g = graph::Cycle(10);
  auto a = MonteCarloPpr(g, 0, 0.3, 1000, 7);
  auto b = MonteCarloPpr(g, 0, 0.3, 1000, 7);
  EXPECT_EQ(a, b);
}

TEST(TopKTest, ReturnsSortedTopK) {
  CsrGraph g = graph::BarabasiAlbert(500, 3, 17);
  auto top = TopKPpr(g, 10, 0.2, 20, 1e-6);
  ASSERT_EQ(top.size(), 20u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  EXPECT_EQ(top[0].first, 10u);  // Source dominates its own PPR.
}

TEST(TopKTest, KLargerThanSupportReturnsAll) {
  CsrGraph g = graph::Path(4);
  auto top = TopKPpr(g, 0, 0.5, 100, 1e-8);
  EXPECT_LE(top.size(), 4u);
  EXPECT_GE(top.size(), 2u);
}

TEST(AppnpPropagateTest, AlphaOneIsIdentity) {
  CsrGraph g = graph::ErdosRenyi(30, 90, 19);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(1);
  Matrix x = Matrix::Gaussian(30, 4, 0, 1, &rng);
  Matrix z = AppnpPropagate(prop, x, 1.0, 5);
  EXPECT_LT(tensor::MaxAbsDiff(z, x), 1e-6);
}

TEST(AppnpPropagateTest, ConvergesToFixedPoint) {
  CsrGraph g = graph::ErdosRenyi(50, 200, 23);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(2);
  Matrix x = Matrix::Gaussian(50, 3, 0, 1, &rng);
  Matrix z40 = AppnpPropagate(prop, x, 0.2, 40);
  Matrix z80 = AppnpPropagate(prop, x, 0.2, 80);
  EXPECT_LT(tensor::MaxAbsDiff(z40, z80), 1e-4);
  // Fixed point satisfies z = (1-a) S z + a x.
  Matrix sz;
  prop.Apply(z80, &sz);
  tensor::Scale(0.8f, &sz);
  tensor::Axpy(0.2f, x, &sz);
  EXPECT_LT(tensor::MaxAbsDiff(z80, sz), 1e-4);
}

TEST(AppnpPropagateTest, EarlyStopReportsFewerHops) {
  CsrGraph g = graph::Complete(20);  // Mixes fast: early stop kicks in.
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  Matrix x(20, 2, 1.0f);
  AppnpStats stats;
  AppnpPropagate(prop, x, 0.3, 100, 1e-7, &stats);
  EXPECT_LT(stats.hops_run, 100);
  EXPECT_LT(stats.final_delta, 1e-7);
}

TEST(ThresholdedPropagateTest, ZeroThresholdMatchesDense) {
  CsrGraph g = graph::ErdosRenyi(40, 160, 29);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(3);
  Matrix x = Matrix::Gaussian(40, 3, 0, 1, &rng);
  Matrix dense = AppnpPropagate(prop, x, 0.2, 6);
  ThresholdedStats stats;
  Matrix sparse = ThresholdedPropagate(prop, x, 0.2, 6, 0.0, &stats);
  EXPECT_LT(tensor::MaxAbsDiff(dense, sparse), 1e-5);
  EXPECT_EQ(stats.ops_skipped, 0);
}

TEST(ThresholdedPropagateTest, ThresholdSkipsOpsWithBoundedError) {
  CsrGraph g = graph::BarabasiAlbert(300, 4, 31);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(4);
  Matrix x = Matrix::Gaussian(300, 8, 0, 1, &rng);
  Matrix dense = AppnpPropagate(prop, x, 0.2, 4);
  ThresholdedStats stats;
  Matrix sparse = ThresholdedPropagate(prop, x, 0.2, 4, 1e-3, &stats);
  EXPECT_GT(stats.ops_skipped, 0);
  EXPECT_GT(stats.ops_performed, 0);
  // Unifews-style claim: large op savings, small embedding perturbation.
  EXPECT_LT(tensor::MaxAbsDiff(dense, sparse), 0.05);
}

TEST(FeaturePushTest, MatchesDenseColumnStochasticFixedPoint) {
  CsrGraph g = graph::ErdosRenyi(80, 320, 41);
  common::Rng rng(6);
  Matrix x = Matrix::Gaussian(80, 4, 0, 1, &rng);
  // Dense reference: same recurrence with the column-stochastic operator
  // run to convergence.
  graph::Propagator prop(g, graph::Normalization::kColumn, false);
  Matrix dense = AppnpPropagate(prop, x, 0.2, 300);
  // Push result scales the fixed point by alpha relative to the APPNP
  // recurrence z = (1-a) M z + a x whose fixed point is a*(I-(1-a)M)^-1 x:
  // both equal alpha * sum (1-a)^k M^k x. They should coincide.
  Matrix pushed = FeaturePush(g, x, 0.2, 1e-7);
  EXPECT_LT(tensor::MaxAbsDiff(dense, pushed), 1e-3);
}

TEST(FeaturePushTest, ErrorBoundedByRmaxTimesDegree) {
  CsrGraph g = graph::BarabasiAlbert(150, 3, 43);
  common::Rng rng(7);
  Matrix x = Matrix::Gaussian(150, 2, 0, 1, &rng);
  graph::Propagator prop(g, graph::Normalization::kColumn, false);
  Matrix exact = AppnpPropagate(prop, x, 0.2, 500);
  const double r_max = 1e-3;
  Matrix pushed = FeaturePush(g, x, 0.2, r_max);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (int64_t c = 0; c < x.cols(); ++c) {
      const double bound =
          r_max * std::max<double>(1.0, static_cast<double>(g.OutDegree(u)));
      // Signed push spreads residual mass along walks; the per-entry
      // deviation stays within a small multiple of the local bound.
      EXPECT_LE(std::fabs(exact.at(static_cast<int64_t>(u), c) -
                          pushed.at(static_cast<int64_t>(u), c)),
                5.0 * bound)
          << u << "," << c;
    }
  }
}

TEST(FeaturePushTest, SparserColumnsCostFewerPushes) {
  CsrGraph g = graph::ErdosRenyi(400, 2000, 47);
  Matrix dense_x(400, 1, 1.0f);
  Matrix sparse_x(400, 1, 0.0f);
  sparse_x.at(0, 0) = 1.0f;  // Single-source column.
  FeaturePushStats dense_stats, sparse_stats;
  FeaturePush(g, dense_x, 0.2, 1e-4, &dense_stats);
  FeaturePush(g, sparse_x, 0.2, 1e-4, &sparse_stats);
  EXPECT_LT(sparse_stats.edges_touched, dense_stats.edges_touched / 2);
}

TEST(ThresholdedPropagateTest, HigherThresholdSkipsMore) {
  CsrGraph g = graph::ErdosRenyi(200, 1000, 37);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(5);
  Matrix x = Matrix::Gaussian(200, 4, 0, 1, &rng);
  ThresholdedStats low, high;
  ThresholdedPropagate(prop, x, 0.2, 3, 1e-4, &low);
  ThresholdedPropagate(prop, x, 0.2, 3, 1e-2, &high);
  EXPECT_GT(high.ops_skipped, low.ops_skipped);
}

}  // namespace
}  // namespace sgnn::ppr
