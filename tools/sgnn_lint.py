#!/usr/bin/env python3
"""sgnn-lint driver. See tools/sgnn_lint/__init__.py for the pass and rule
catalog; `--list-rules` prints every stable rule id.

  tools/sgnn_lint.py [--root DIR]      lint the repo (all five passes)
  tools/sgnn_lint.py --self-test       prove every rule against its fixture
  tools/sgnn_lint.py --pass det        run a single pass
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from sgnn_lint import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main())
