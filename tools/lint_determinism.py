#!/usr/bin/env python3
"""Determinism / assertion lint for the sgnn tree.

The repo's replay story (seeded runs, fault-injection replay, bit-identical
checkpoint resume) only holds if no code path consults an unseeded entropy
source or a wall clock that feeds results. This lint fails CI when C++ under
the scanned roots uses a forbidden construct outside the sanctioned wrappers:

  std::random_device   -- unseeded entropy; use common::Rng(seed)
  std::chrono::system_clock -- wall time; use common::WallTimer (steady)
  rand( / srand(       -- C PRNG, hidden global state; use common::Rng
  assert(              -- compiled out under NDEBUG (the default Release
                          build), so it checks nothing; use SGNN_CHECK /
                          SGNN_DCHECK

Sanctioned files (the wrappers themselves) are listed in ALLOWLIST. Line
suppressions are possible with a trailing `// lint:allow-nondeterminism`
comment, for the rare case that needs documenting in place.

Usage:
  tools/lint_determinism.py [--root DIR]     # lint the repo (default)
  tools/lint_determinism.py --self-test      # verify the lint still detects
                                             # the seeded negative fixture
"""

import argparse
import pathlib
import re
import sys

# (human name, compiled regex). Patterns run against comment-stripped lines.
FORBIDDEN = [
    ("std::random_device", re.compile(r"std::random_device")),
    ("std::chrono::system_clock", re.compile(r"system_clock")),
    ("rand()", re.compile(r"(?<![_\w])rand\s*\(")),
    ("srand()", re.compile(r"(?<![_\w])srand\s*\(")),
    ("assert()", re.compile(r"(?<![_\w])assert\s*\(")),
]

# Stricter rules for path prefixes whose contract is stronger than the
# tree-wide one. sgnn::obs promises byte-identical exports from logical
# ticks only, so ANY clock — even the steady ones the rest of the tree may
# use for reporting — is forbidden there. sgnn::par promises bit-identical
# results for any worker count, which only holds when every thread comes
# from the shared common::ThreadPool; raw threading primitives would smuggle
# in scheduling-dependent execution.
SCOPED_FORBIDDEN = {
    "src/obs/": [
        ("std::chrono (obs is logical-tick only)",
         re.compile(r"std::chrono|steady_clock|high_resolution_clock")),
    ],
    "src/par/": [
        ("raw thread primitive (par must use common::ThreadPool)",
         re.compile(r"std::(thread|jthread|async)\b")),
    ],
}

# Per-prefix negative fixtures: each must be clean under the tree-wide
# rules but trip every scoped rule of its prefix (checked by --self-test).
SCOPED_FIXTURES = {
    "src/obs/": "tools/lint_fixtures/obs_wallclock.cc.fixture",
    "src/par/": "tools/lint_fixtures/par_rawthread.cc.fixture",
}

# Rules that apply everywhere EXCEPT under the confining prefix — the
# inverse of SCOPED_FORBIDDEN. Raw file I/O (mmap and the C descriptor /
# stdio calls) is confined to sgnn::storage: the out-of-core engine is the
# one place that may bypass the stream wrappers, because that is where the
# resident-budget accounting lives. Raw I/O elsewhere would read bytes the
# budget never sees. (std::fstream stays allowed tree-wide; `.open(` member
# calls do not match the bare-`open(` pattern.)
CONFINED_FORBIDDEN = {
    "src/storage/": [
        ("mmap/munmap (confined to src/storage/)",
         re.compile(r"(?<![_\w])m(?:un)?map\s*\(")),
        ("raw open() (confined to src/storage/)",
         re.compile(r"(?<![_\w.:>])open\s*\(")),
        ("C stdio / descriptor I/O (confined to src/storage/)",
         re.compile(r"(?<![_\w])(?:fopen|fread|fwrite|pread|pwrite)\s*\(")),
    ],
    # Process management is confined to sgnn::dist: forked children that
    # escape the coordinator's spawn/reap/respawn bookkeeping would break
    # both the replayable kill schedules and the bit-identity contract
    # (an unmanaged worker's writes race the canonical epoch state). The
    # lookbehind admits `::fork(` etc. but rejects `do_fork(`/`my_kill(`.
    "src/dist/": [
        ("process/socket syscall (confined to src/dist/)",
         re.compile(r"(?<![_\w])(?:fork|vfork|socketpair|pipe2?)\s*\(")),
        ("signal/process-control syscall (confined to src/dist/)",
         re.compile(r"(?<![_\w])(?:kill|waitpid|signal|sigaction|_exit)\s*\(")),
    ],
}

# Negative fixtures for the confined rules: clean when linted under the
# confining prefix, tripping every confined rule when linted anywhere else.
CONFINED_FIXTURES = {
    "src/storage/": "tools/lint_fixtures/storage_rawio.cc.fixture",
    "src/dist/": "tools/lint_fixtures/dist_process.cc.fixture",
}

# Wrapper files allowed to touch the primitives they encapsulate.
ALLOWLIST = {
    "src/common/rng.h",
    "src/common/rng.cc",
    "src/common/timer.h",
    "src/common/timer.cc",
}

SCAN_ROOTS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".h", ".cc", ".cpp", ".hpp"}
SUPPRESS = "lint:allow-nondeterminism"

FIXTURE = "tools/lint_fixtures/nondeterministic.cc.fixture"


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    newlines so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def patterns_for(rel: str) -> list:
    patterns = list(FORBIDDEN)
    for prefix, extra in SCOPED_FORBIDDEN.items():
        if rel.startswith(prefix):
            patterns.extend(extra)
    for prefix, extra in CONFINED_FORBIDDEN.items():
        if not rel.startswith(prefix):
            patterns.extend(extra)
    return patterns


def lint_file(path: pathlib.Path, rel: str) -> list:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [(rel, 0, f"unreadable: {e}")]
    patterns = patterns_for(rel)
    raw_lines = text.splitlines()
    violations = []
    for lineno, line in enumerate(strip_comments(text).splitlines(), start=1):
        raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if SUPPRESS in raw:
            continue
        for name, pattern in patterns:
            if pattern.search(line):
                violations.append((rel, lineno, f"forbidden {name}: {raw.strip()}"))
    return violations


def lint_tree(root: pathlib.Path) -> list:
    violations = []
    for scan_root in SCAN_ROOTS:
        base = root / scan_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if rel in ALLOWLIST:
                continue
            violations.extend(lint_file(path, rel))
    return violations


def self_test(root: pathlib.Path) -> int:
    """The negative fixture must trip every forbidden pattern; a lint that
    stops seeing it has rotted."""
    fixture = root / FIXTURE
    if not fixture.is_file():
        print(f"self-test FAILED: fixture missing: {FIXTURE}")
        return 1
    found = lint_file(fixture, FIXTURE)
    missing = [name for name, _ in FORBIDDEN
               if not any(v[2].startswith(f"forbidden {name}:") for v in found)]
    if missing:
        print(f"self-test FAILED: fixture did not trip: {', '.join(missing)}")
        return 1
    # The suppression comment must actually suppress.
    suppressed = [v for v in found if "suppressed_ok" in v[2]]
    if suppressed:
        print("self-test FAILED: suppression comment did not suppress")
        return 1
    # Each scoped fixture only violates its prefix's rules: linted under
    # its own path it must be clean, linted as prefix code it must trip
    # every rule scoped to that prefix.
    for prefix, rules in SCOPED_FORBIDDEN.items():
        fixture_rel = SCOPED_FIXTURES.get(prefix)
        if fixture_rel is None:
            print(f"self-test FAILED: no fixture declared for {prefix}")
            return 1
        scoped_fixture = root / fixture_rel
        if not scoped_fixture.is_file():
            print(f"self-test FAILED: fixture missing: {fixture_rel}")
            return 1
        if lint_file(scoped_fixture, fixture_rel):
            print(f"self-test FAILED: {fixture_rel} tripped outside {prefix}")
            return 1
        scoped = lint_file(scoped_fixture, prefix + "fixture.cc")
        missing = [name for name, _ in rules
                   if not any(v[2].startswith(f"forbidden {name}:")
                              for v in scoped)]
        if missing:
            print(f"self-test FAILED: {fixture_rel} did not trip: "
                  f"{', '.join(missing)}")
            return 1
    # Each confined fixture is the mirror image: clean when linted under
    # the confining prefix, tripping every confined rule elsewhere.
    for prefix, rules in CONFINED_FORBIDDEN.items():
        fixture_rel = CONFINED_FIXTURES.get(prefix)
        if fixture_rel is None:
            print(f"self-test FAILED: no fixture declared for {prefix}")
            return 1
        confined_fixture = root / fixture_rel
        if not confined_fixture.is_file():
            print(f"self-test FAILED: fixture missing: {fixture_rel}")
            return 1
        if lint_file(confined_fixture, prefix + "fixture.cc"):
            print(f"self-test FAILED: {fixture_rel} tripped inside {prefix}")
            return 1
        outside = lint_file(confined_fixture, "src/graph/fixture.cc")
        missing = [name for name, _ in rules
                   if not any(v[2].startswith(f"forbidden {name}:")
                              for v in outside)]
        if missing:
            print(f"self-test FAILED: {fixture_rel} did not trip outside "
                  f"{prefix}: {', '.join(missing)}")
            return 1
    print(f"self-test OK: fixture tripped all {len(FORBIDDEN)} patterns; "
          f"{len(SCOPED_FORBIDDEN)} scoped fixture(s) tripped their rules; "
          f"{len(CONFINED_FORBIDDEN)} confined fixture(s) verified")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None, help="repo root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the lint against the negative fixture")
    args = parser.parse_args()

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent
    if args.self_test:
        return self_test(root)

    violations = lint_tree(root)
    for rel, lineno, message in violations:
        print(f"{rel}:{lineno}: {message}")
    if violations:
        print(f"\n{len(violations)} determinism-lint violation(s). "
              "Use common::Rng / common::WallTimer / SGNN_CHECK, or annotate "
              f"an audited exception with `// {SUPPRESS}`.")
        return 1
    print("determinism lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
