#!/usr/bin/env python3
"""Validate Prometheus text exposition produced by sgnn::obs.

A scraper is unforgiving: one malformed line and the whole page is
dropped. This checker enforces the subset of the text-exposition format
the MetricsRegistry writer promises, so a writer regression fails CI
before it reaches a real scrape:

  * every family has `# HELP <name> <help>` then `# TYPE <name> <type>`
    (type one of counter/gauge/histogram) before its samples,
  * sample names match the family (histogram samples use the _bucket /
    _sum / _count suffixes; `le` labels are present and increasing, the
    last bucket is `+Inf`, bucket counts are cumulative and the +Inf
    bucket equals `_count`),
  * counter family names end in `_total`, counter/histogram values never
    decrease below zero, and all values parse as floats,
  * families appear in sorted order and no family repeats (the writer's
    stable-sort guarantee; scrapes diff cleanly run to run).

Usage:
  tools/check_metrics_exposition.py --file PAGE.txt
  tools/check_metrics_exposition.py --command ./observability --prometheus-only
  tools/check_metrics_exposition.py --self-test
"""

import argparse
import math
import re
import subprocess
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<help>.*)$")
TYPE_RE = re.compile(r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*) "
                     r"(?P<type>counter|gauge|histogram)$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})? (?P<value>\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(token):
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)  # Raises ValueError on garbage.


def parse_labels(raw):
    """Returns the label list; raises ValueError if `raw` is not a
    well-formed comma-separated label set."""
    if raw is None or raw == "":
        return []
    labels, rest = [], raw
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            raise ValueError(f"malformed labels near {rest!r}")
        labels.append((m.group(1), m.group(2)))
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise ValueError(f"expected ',' between labels near {rest!r}")
    return labels


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, lineno, message):
        self.errors.append(f"line {lineno}: {message}")

    def check(self, text):
        if text and not text.endswith("\n"):
            self.error(0, "exposition must end with a newline")
        families = []  # (name, type, [(lineno, sample_name, labels, value)])
        current = None
        for lineno, line in enumerate(text.splitlines(), start=1):
            if line == "":
                self.error(lineno, "blank line inside exposition")
                continue
            if line.startswith("# HELP"):
                m = HELP_RE.match(line)
                if not m:
                    self.error(lineno, f"malformed HELP line: {line!r}")
                    continue
                current = {"name": m.group("name"), "type": None,
                           "help_line": lineno, "samples": []}
                families.append(current)
                continue
            if line.startswith("# TYPE"):
                m = TYPE_RE.match(line)
                if not m:
                    self.error(lineno, f"malformed TYPE line: {line!r}")
                    continue
                if current is None or current["name"] != m.group("name") \
                        or current["type"] is not None:
                    self.error(lineno, "TYPE without a preceding HELP for "
                               f"{m.group('name')}")
                    continue
                current["type"] = m.group("type")
                continue
            if line.startswith("#"):
                self.error(lineno, f"unknown comment line: {line!r}")
                continue
            m = SAMPLE_RE.match(line)
            if not m:
                self.error(lineno, f"malformed sample line: {line!r}")
                continue
            try:
                labels = parse_labels(m.group("labels"))
                value = parse_value(m.group("value"))
            except ValueError as e:
                self.error(lineno, str(e))
                continue
            if current is None or current["type"] is None:
                self.error(lineno, f"sample {m.group('name')} before any "
                           "HELP/TYPE header")
                continue
            current["samples"].append((lineno, m.group("name"), labels, value))

        names = [f["name"] for f in families]
        if names != sorted(names):
            self.error(0, "families are not in sorted order")
        if len(set(names)) != len(names):
            self.error(0, "duplicate family name")
        for family in families:
            self.check_family(family)
        return not self.errors

    def check_family(self, family):
        name, ftype = family["name"], family["type"]
        lineno = family["help_line"]
        if ftype is None:
            self.error(lineno, f"family {name} has HELP but no TYPE")
            return
        if not family["samples"]:
            self.error(lineno, f"family {name} has no samples")
            return
        if ftype == "counter":
            if not name.endswith("_total"):
                self.error(lineno, f"counter {name} must end in _total")
            for sln, sname, _, value in family["samples"]:
                if sname != name:
                    self.error(sln, f"sample {sname} under family {name}")
                if value < 0:
                    self.error(sln, f"counter {name} is negative")
        elif ftype == "gauge":
            for sln, sname, _, _ in family["samples"]:
                if sname != name:
                    self.error(sln, f"sample {sname} under family {name}")
        else:
            self.check_histogram(family)

    def check_histogram(self, family):
        name = family["name"]
        # Group samples by their non-`le` label set: one histogram series
        # per group, each needing buckets + _sum + _count.
        series = {}
        for sln, sname, labels, value in family["samples"]:
            base = tuple(kv for kv in labels if kv[0] != "le")
            entry = series.setdefault(base, {"buckets": [], "sum": None,
                                             "count": None, "line": sln})
            if sname == name + "_bucket":
                le = [v for k, v in labels if k == "le"]
                if len(le) != 1:
                    self.error(sln, f"bucket of {name} needs exactly one le")
                    continue
                try:
                    entry["buckets"].append((sln, parse_value(le[0]), value))
                except ValueError:
                    self.error(sln, f"unparsable le={le[0]!r}")
            elif sname == name + "_sum":
                entry["sum"] = (sln, value)
            elif sname == name + "_count":
                entry["count"] = (sln, value)
            else:
                self.error(sln, f"sample {sname} under histogram {name}")
        for base, entry in series.items():
            where = f"histogram {name}{dict(base) if base else ''}"
            buckets = entry["buckets"]
            if not buckets:
                self.error(entry["line"], f"{where} has no buckets")
                continue
            bounds = [b for _, b, _ in buckets]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                self.error(buckets[0][0],
                           f"{where} le bounds not strictly increasing")
            if not math.isinf(bounds[-1]):
                self.error(buckets[-1][0], f"{where} missing le=\"+Inf\"")
            counts = [c for _, _, c in buckets]
            if any(b > a for a, b in zip(counts[1:], counts)):
                self.error(buckets[0][0],
                           f"{where} bucket counts not cumulative")
            if entry["sum"] is None:
                self.error(entry["line"], f"{where} missing _sum")
            if entry["count"] is None:
                self.error(entry["line"], f"{where} missing _count")
            elif counts and entry["count"][1] != counts[-1]:
                self.error(entry["count"][0],
                           f"{where} _count != +Inf bucket")


GOOD = """\
# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{route="predict"} 3
# HELP demo_size Batch sizes.
# TYPE demo_size histogram
demo_size_bucket{le="1"} 1
demo_size_bucket{le="+Inf"} 3
demo_size_sum 5005.5
demo_size_count 3
# HELP demo_temperature Die temperature.
# TYPE demo_temperature gauge
demo_temperature{chip="0"} 41.5
"""

# Each bad page must be rejected; the tag names what is wrong with it.
BAD = [
    ("counter-without-total", "# HELP x Requests.\n# TYPE x counter\nx 1\n"),
    ("sample-before-header", "x_total 1\n"),
    ("unsorted-families",
     "# HELP b_total B.\n# TYPE b_total counter\nb_total 1\n"
     "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n"),
    ("histogram-missing-inf",
     "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\n"
     "h_sum 1\nh_count 1\n"),
    ("histogram-not-cumulative",
     "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\n"
     "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n"),
    ("count-mismatch",
     "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\n"
     "h_sum 1\nh_count 4\n"),
    ("garbage-value", "# HELP g G.\n# TYPE g gauge\ng pancake\n"),
    ("malformed-labels", "# HELP g G.\n# TYPE g gauge\ng{oops} 1\n"),
    ("missing-newline", "# HELP g G.\n# TYPE g gauge\ng 1"),
]


def self_test():
    checker = Checker()
    if not checker.check(GOOD):
        print("self-test FAILED: good page rejected:")
        for e in checker.errors:
            print(f"  {e}")
        return 1
    for tag, page in BAD:
        if Checker().check(page):
            print(f"self-test FAILED: bad page accepted: {tag}")
            return 1
    print(f"self-test OK: good page accepted, {len(BAD)} bad pages rejected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="read the exposition from a file")
    source.add_argument("--command", nargs=argparse.REMAINDER,
                        help="run COMMAND [ARGS...] and check its stdout")
    source.add_argument("--self-test", action="store_true",
                        help="verify the checker against known pages")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.file:
        with open(args.file, encoding="utf-8") as f:
            text = f.read()
    else:
        if not args.command:
            parser.error("--command needs a binary to run")
        proc = subprocess.run(args.command, capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"command failed ({proc.returncode}): "
                  f"{' '.join(args.command)}\n{proc.stderr}")
            return 1
        text = proc.stdout

    checker = Checker()
    if checker.check(text):
        lines = text.count("\n")
        print(f"exposition OK ({lines} lines)")
        return 0
    for e in checker.errors:
        print(e)
    print(f"\n{len(checker.errors)} exposition error(s)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
