"""Billing pass: kernel translation units keep the exact-billing contract
visible.

The scalability claims are stated in OpCounters units (edges touched,
floats moved, resident bytes), not wall clock -- see common/counters.h. A
translation unit under the kernel directories (src/graph, src/par,
src/storage, src/dist) that traverses adjacency but never references the
OpCounters API has silently opted out of that accounting: its work is
invisible to ScopedCounterDelta regions, pipeline report rows, and the
obs gauge exports.

Traversal is recognised by any of:
  * a range-for over `Neighbors(...)` (the CSR adjacency accessor),
  * read-side indexing of a CSR neighbour array (`neighbors[`; the
    write-side build arrays are named `neighbors_` and do not match),
  * a for-loop bounded by `num_edges()`.

The finding is per-TU (first traversal loop reported): the fix is to bill
the loop, not to sprinkle counters on every line.
"""

import re

from . import registry

RULES = [
    registry.Rule(
        "billing/unbilled-kernel-loop",
        "this kernel TU traverses adjacency but never references "
        "OpCounters; unbilled edge work breaks the exact-billing contract "
        "(common/counters.h) that benchmarks and reports rely on",
        fixture="billing-unbilled-kernel-loop.cc.fixture",
        fixture_rel="src/graph/fixture.cc"),
]

KERNEL_PREFIXES = ("src/graph/", "src/par/", "src/storage/", "src/dist/")

TRAVERSAL_PATTERNS = [
    ("range-for over Neighbors()",
     re.compile(r"for\s*\([^;(){}]*:\s*[^(){}]*\bNeighbors\s*\(")),
    ("neighbors[] read",
     re.compile(r"\bneighbors\s*\[")),
    ("loop bounded by num_edges()",
     re.compile(r"for\s*\([^{;]*;\s*[^;{]*\bnum_edges\s*\(\)")),
]

COUNTER_REF_RE = re.compile(
    r"\b(?:GlobalCounters|OpCounters|ScopedCounterDelta|"
    r"AggregateThreadCounters|SnapshotThreadCounters)\b")


def check_file(sf, kernel_tu=None):
    if kernel_tu is None:
        kernel_tu = sf.rel.startswith(KERNEL_PREFIXES) and \
            sf.rel.endswith((".cc", ".cpp"))
    if not kernel_tu:
        return []
    if COUNTER_REF_RE.search(sf.code):
        return []
    for what, pattern in TRAVERSAL_PATTERNS:
        m = pattern.search(sf.code)
        if m:
            return [registry.Diagnostic(
                sf.rel, sf.line_of(m.start()), RULES[0],
                m.group(0).split("\n")[0].strip(),
                f"{what}, and the TU never references OpCounters")]
    return []


def run(files):
    diags = []
    for sf in files:
        diags.extend(check_file(sf))
    return diags
