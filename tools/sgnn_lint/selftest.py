"""Fixture self-test: a lint that stops seeing its fixtures has rotted.

For every registered rule there is a negative fixture under
tools/lint_fixtures/; the self-test proves (a) the rule fires on its
fixture when linted under the rule's pretend path, (b) the shared clean
file fires nothing under any pass, and (c) the suppression syntax both
silences a well-formed allow() and is itself policed (malformed or
unknown-rule suppressions fire meta/bad-suppression).
"""

import pathlib

from . import config
from . import pass_det
from . import pass_layering
from . import registry
from . import scanner

FIXTURE_DIR = "tools/lint_fixtures"
CLEAN_FIXTURE = "clean.cc.fixture"
SUPPRESSED_FIXTURE = "suppressed.cc.fixture"

# Rules whose fixture must ALSO be clean when linted under a different
# path: confined rules are legal inside their prefix, scoped rules outside
# theirs, and the billing rule outside the kernel directories.
COUNTER_PATHS = {
    "det/raw-io": "src/storage/fixture.cc",
    "det/process-syscall": "src/dist/fixture.cc",
    "det/net-syscall": "src/net/fixture.cc",
    "det/simd-intrinsics": "src/simd/fixture.cc",
    "det/obs-wallclock": "src/graph/fixture.cc",
    "det/par-raw-thread": "src/graph/fixture.cc",
    "billing/unbilled-kernel-loop": "src/models/fixture.cc",
}


def _load_fixture(root, name):
    path = root / FIXTURE_DIR / name
    if not path.is_file():
        return None
    return path.read_text(encoding="utf-8", errors="replace")


def _lint_as(root, reg, text, rel):
    """Runs every pass over a single in-memory file pretending to live at
    `rel`, suppressions applied. Layer config is the real one."""
    from . import cli  # late import to avoid a module cycle
    sf = scanner.SourceFile(rel, text)
    layer_cfg = config.load(root / "tools" / "sgnn_lint" / "layers.toml")
    diags = []
    for name, (mod, accepts) in cli.PASSES.items():
        if not accepts(rel):
            continue
        if name == "layering":
            diags.extend(mod.check_file(sf, layer_cfg))
        elif name == "status":
            diags.extend(mod.check_file(sf, mod.harvest([sf])))
        elif name == "det":
            diags.extend(mod.check_file(sf))
        elif name == "billing":
            diags.extend(mod.check_file(sf))
        else:
            diags.extend(mod.check_file(sf))
    return registry.apply_suppressions(reg, {rel: sf}, diags)


def run(root, reg):
    root = pathlib.Path(root)
    failures = []
    checked = 0

    for rule in reg.all():
        if rule.fixture is None:
            failures.append(f"{rule.id}: no fixture declared")
            continue
        text = _load_fixture(root, rule.fixture)
        if text is None:
            failures.append(
                f"{rule.id}: fixture missing: {FIXTURE_DIR}/{rule.fixture}")
            continue
        checked += 1
        if rule.id == "layering/cycle":
            # The fixture is a layers.toml with a declared cycle.
            cfg = config.load(root / FIXTURE_DIR / rule.fixture)
            diags = pass_layering.check_config(cfg)
        elif rule.id == "meta/bad-suppression":
            sf = scanner.SourceFile(rule.fixture_rel, text)
            diags = registry.apply_suppressions(
                reg, {rule.fixture_rel: sf}, [])
        else:
            diags = _lint_as(root, reg, text, rule.fixture_rel)
        if not any(d.rule.id == rule.id for d in diags):
            failures.append(
                f"{rule.id}: fixture {rule.fixture} did not trip the rule "
                f"(linted as {rule.fixture_rel})")
        counter_rel = COUNTER_PATHS.get(rule.id)
        if counter_rel is not None:
            counter = [d for d in _lint_as(root, reg, text, counter_rel)
                       if d.rule.id == rule.id]
            if counter:
                failures.append(
                    f"{rule.id}: fixture {rule.fixture} tripped under "
                    f"{counter_rel}, where the rule must not apply")

    clean = _load_fixture(root, CLEAN_FIXTURE)
    if clean is None:
        failures.append(f"clean fixture missing: {FIXTURE_DIR}/{CLEAN_FIXTURE}")
    else:
        for rel in ("src/graph/clean.cc", "src/storage/clean.cc",
                    "src/obs/clean.cc", "tests/clean.cc"):
            diags = _lint_as(root, reg, clean, rel)
            if diags:
                failures.append(
                    f"clean fixture fired under {rel}: "
                    + "; ".join(f"{d.rule.id}@{d.line}" for d in diags))

    suppressed = _load_fixture(root, SUPPRESSED_FIXTURE)
    if suppressed is None:
        failures.append(
            f"suppressed fixture missing: {FIXTURE_DIR}/{SUPPRESSED_FIXTURE}")
    else:
        # Unsuppressed, the fixture must trip; with its allow() comments
        # honoured it must be silent -- proving both halves of the syntax.
        sf = scanner.SourceFile("src/graph/suppressed.cc", suppressed)
        raw = pass_det.check_file(sf)
        if not raw:
            failures.append("suppressed fixture has no underlying findings")
        diags = _lint_as(root, reg, suppressed, "src/graph/suppressed.cc")
        if diags:
            failures.append(
                "suppressed fixture still fired after suppression: "
                + "; ".join(f"{d.rule.id}@{d.line}" for d in diags))

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}")
        return 1
    print(f"self-test OK: {checked} rule fixture(s) tripped their rules; "
          f"clean + suppression fixtures verified")
    return 0
