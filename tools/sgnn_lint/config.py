"""Loader/validator for tools/sgnn_lint/layers.toml."""

import pathlib
import tomllib


class LayerConfig:
    def __init__(self, modules, exceptions, path):
        #: module -> sorted list of modules it may include.
        self.modules = modules
        #: (module, header) -> reason.
        self.exceptions = exceptions
        self.path = path

    def allowed(self, from_module, to_module):
        return to_module == from_module or \
            to_module in self.modules.get(from_module, [])

    def excepted(self, from_module, header):
        return (from_module, header) in self.exceptions

    def find_cycle(self):
        """Returns one cycle in the declared graph as a list of modules
        (closed: first == last), or None if the graph is a DAG."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {m: WHITE for m in self.modules}
        stack = []

        def visit(m):
            color[m] = GREY
            stack.append(m)
            for dep in self.modules.get(m, []):
                if dep not in color:
                    continue  # undeclared dep reported separately
                if color[dep] == GREY:
                    return stack[stack.index(dep):] + [dep]
                if color[dep] == WHITE:
                    cycle = visit(dep)
                    if cycle:
                        return cycle
            stack.pop()
            color[m] = BLACK
            return None

        for m in sorted(self.modules):
            if color[m] == WHITE:
                cycle = visit(m)
                if cycle:
                    return cycle
        return None

    def undeclared_deps(self):
        """(module, dep) pairs where a declared dependency names a module
        that is not itself declared."""
        bad = []
        for m in sorted(self.modules):
            for dep in self.modules[m]:
                if dep not in self.modules:
                    bad.append((m, dep))
        return bad


def load(path):
    """Parses layers.toml into a LayerConfig. Raises ValueError on a file
    that does not match the expected shape."""
    data = tomllib.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    modules = data.get("modules")
    if not isinstance(modules, dict) or not modules:
        raise ValueError(f"{path}: missing or empty [modules] table")
    for mod, deps in modules.items():
        if not isinstance(deps, list) or \
                not all(isinstance(d, str) for d in deps):
            raise ValueError(f"{path}: modules.{mod} must be a string array")
    exceptions = {}
    for exc in data.get("exceptions", []):
        for key in ("module", "header", "reason"):
            if not isinstance(exc.get(key), str) or not exc[key].strip():
                raise ValueError(
                    f"{path}: every [[exceptions]] entry needs a non-empty "
                    f"'{key}'")
        exceptions[(exc["module"], exc["header"])] = exc["reason"]
    return LayerConfig(modules, exceptions, str(path))
