"""Layering pass: enforce the documented module DAG on `#include` edges.

Every quoted include under src/ whose first path component is a module
directory forms an edge (from-module -> to-module). The edge must be
declared in layers.toml or covered by a per-header exception; the declared
graph itself must be acyclic. Undeclared modules -- a new directory nobody
registered, or a typo'd include -- are their own finding, so growing the
tree forces a conscious layers.toml edit.
"""

import re

from . import registry

RULES = [
    registry.Rule(
        "layering/forbidden-include",
        "upward or cross-layer include: the edge is not in the documented "
        "layer DAG (tools/sgnn_lint/layers.toml) and no exception covers it",
        fixture="layering-forbidden-include.cc.fixture",
        fixture_rel="src/common/fixture.cc"),
    registry.Rule(
        "layering/undeclared-module",
        "module is not declared in tools/sgnn_lint/layers.toml; every src/ "
        "module must be registered so its dependencies are reviewed",
        fixture="layering-undeclared-module.cc.fixture",
        fixture_rel="src/graph/fixture.cc"),
    registry.Rule(
        "layering/cycle",
        "the declared layer graph must be a DAG; a cycle would make the "
        "link order (and the layering contract) meaningless",
        fixture="layering-cycle.toml.fixture",
        fixture_rel="tools/sgnn_lint/layers.toml"),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)


def rules_by_id():
    return {r.id: r for r in RULES}


def check_config(cfg):
    """Config-level findings: cycles and dangling declared deps."""
    rules = rules_by_id()
    diags = []
    for mod, dep in cfg.undeclared_deps():
        diags.append(registry.Diagnostic(
            cfg.path, 1, rules["layering/undeclared-module"],
            f"{mod} -> {dep}",
            f"declared dependency '{dep}' is not a declared module"))
    cycle = cfg.find_cycle()
    if cycle:
        diags.append(registry.Diagnostic(
            cfg.path, 1, rules["layering/cycle"],
            " -> ".join(cycle), "declared layer graph contains a cycle"))
    return diags


def check_file(sf, cfg):
    """Per-file findings for one SourceFile under src/."""
    rules = rules_by_id()
    diags = []
    parts = sf.rel.split("/")
    if len(parts) < 2 or parts[0] != "src":
        return diags
    module = parts[1]
    if module not in cfg.modules:
        diags.append(registry.Diagnostic(
            sf.rel, 1, rules["layering/undeclared-module"], module,
            "file lives in an undeclared module directory"))
        return diags
    # Includes live inside string literals, which the scanner blanks out of
    # `code`; scan the raw text instead (same length, same line starts).
    for m in INCLUDE_RE.finditer(sf.text):
        header = m.group(1)
        target = header.split("/", 1)[0]
        if "/" not in header:
            continue  # local include with no module component
        line = sf.line_of(m.start())
        if target not in cfg.modules:
            diags.append(registry.Diagnostic(
                sf.rel, line, rules["layering/undeclared-module"],
                f'#include "{header}"',
                f"include target module '{target}' is not declared"))
        elif not cfg.allowed(module, target) and \
                not cfg.excepted(module, header):
            diags.append(registry.Diagnostic(
                sf.rel, line, rules["layering/forbidden-include"],
                f'#include "{header}"',
                f"edge {module} -> {target} is not in the layer DAG"))
    return diags


def run(files, cfg):
    diags = check_config(cfg)
    for sf in files:
        diags.extend(check_file(sf, cfg))
    return diags
