"""sgnn-lint: the unified multi-pass static-analysis suite for the sgnn tree.

Five passes enforce the conventions the layered architecture rests on but
the compiler cannot see end-to-end:

  layering  -- every `#include` edge between src/ modules must be declared
               in tools/sgnn_lint/layers.toml, and the declared graph must
               be a DAG (documented header-only seams are explicit,
               justified exceptions).
  status    -- a call whose result is `Status`/`StatusOr` may not be
               discarded at statement level, and `(void)`-casting one away
               requires a justified suppression. Complemented at compile
               time by `SGNN_NODISCARD` + `-Werror`.
  lock      -- a class that declares a `Mutex`/`SharedMutex` member must
               annotate every mutable field with `SGNN_GUARDED_BY` /
               `SGNN_PT_GUARDED_BY` or suppress with a justification.
  det       -- the determinism contract (absorbs the former
               lint_determinism.py): no unseeded entropy, no wall clocks in
               results, no `assert`, confined raw I/O and process syscalls,
               plus no iteration over unordered containers and no
               pointer-keyed ordering in deterministic paths under src/.
  billing   -- kernel translation units under src/{graph,par,storage,dist}
               that traverse adjacency must reference OpCounters, keeping
               the exact-billing contract visible.

Each finding carries a stable rule id (`<pass>/<rule>`), the offending
token, and the rule's rationale -- first-offender diagnostics in the
`sgnn::analysis` style. Suppress a single line with

    // sgnn-lint: allow(<rule-id>): <justification>

either trailing the offending line or on a comment line of its own
immediately above it. The justification is mandatory; an `allow()` without
one (or naming an unknown rule) is itself a finding (`meta/bad-suppression`).
"""

__all__ = ["registry", "scanner", "config"]
