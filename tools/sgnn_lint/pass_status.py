"""Status-discipline pass: every `Status`/`StatusOr` result is consumed.

Phase 1 harvests the names of functions declared to return
`Status`/`StatusOr<...>` anywhere in the scanned tree. Phase 2 flags
statement-level calls to a harvested name whose result is discarded --
the call expression is the whole statement -- and `(void)` casts of such
calls, which hide the discard from `SGNN_NODISCARD`/`-Werror` and so
require a justified suppression instead.

Names declared with *both* Status and non-Status return types anywhere in
the tree are ambiguous and skipped: this pass prefers silence to a false
positive, because the compile-enforced `[[nodiscard]]` contract (see
common/status.h) backstops it with full type information.
"""

import re

from . import registry

RULES = [
    registry.Rule(
        "status/discarded",
        "the Status/StatusOr result of this call is discarded; error paths "
        "that vanish silently are how I/O and concurrency bugs hide -- "
        "check it, propagate it, or SGNN_CHECK it",
        fixture="status-discarded.cc.fixture"),
    registry.Rule(
        "status/void-cast",
        "(void)-casting a Status away defeats SGNN_NODISCARD and -Werror; "
        "an intentional discard must carry a justified suppression",
        fixture="status-void-cast.cc.fixture"),
]

# A declaration/definition returning Status or StatusOr<...>: optional
# specifiers, the return type, then a (possibly qualified) function name.
DECL_RE = re.compile(
    r"(?:^|[;{}\n])\s*"
    r"(?:SGNN_NODISCARD\s+)?"
    r"(?:template\s*<[^<>]*>\s*)?"
    r"(?:static\s+|virtual\s+|inline\s+|constexpr\s+|friend\s+|"
    r"SGNN_NODISCARD\s+)*"
    r"(?:::)?(?:\w+::)*"
    r"(?:Status|StatusOr\s*<[^;{}()]*?>)\s+"
    r"((?:\w+::)*\w+)\s*\(")

# Any other return type for the same name => ambiguous. Keep the shape in
# sync with DECL_RE so both see the same declaration surface.
ANY_DECL_RE = re.compile(
    r"(?:^|[;{}\n])\s*"
    r"(?:template\s*<[^<>]*>\s*)?"
    r"(?:static\s+|virtual\s+|inline\s+|constexpr\s+|friend\s+)*"
    r"((?:::)?(?:\w+::)*[\w:]+(?:\s*<[^;{}()]*?>)?(?:\s*[*&])?)\s+"
    r"((?:\w+::)*\w+)\s*\(")

# A call at statement level: statement boundary, optionally qualified /
# member-accessed callee, open paren.
CALL_RE = re.compile(
    r"(?:^|[;{}])\s*"
    r"((?:[A-Za-z_]\w*(?:<[^<>;()]*>)?\s*(?:::|\.|->)\s*)*)"
    r"([A-Za-z_]\w*)\s*(\()")

VOID_CAST_RE = re.compile(
    r"\(\s*void\s*\)\s*"
    r"((?:[A-Za-z_]\w*(?:<[^<>;()]*>)?\s*(?:::|\.|->)\s*)*)"
    r"([A-Za-z_]\w*)\s*(\()")

# Control-flow / declarator keywords that can precede a '(' and would
# otherwise look like a statement-level call.
KEYWORDS = {
    "if", "for", "while", "switch", "return", "do", "else", "case",
    "sizeof", "alignof", "co_return", "co_await", "new", "delete",
    "catch", "throw", "static_assert", "decltype",
}


def harvest(files):
    """Returns the set of unambiguous Status-returning function names."""
    status_names = set()
    other_names = set()
    for sf in files:
        for m in DECL_RE.finditer(sf.code):
            status_names.add(m.group(1).split("::")[-1])
        for m in ANY_DECL_RE.finditer(sf.code):
            ret = re.sub(r"\s+", "", m.group(1))
            if ret in KEYWORDS:
                continue  # `return Foo(...)` is a call, not a declaration
            name = m.group(2).split("::")[-1]
            base = ret.split("<")[0].split("::")[-1]
            if base not in ("Status", "StatusOr"):
                other_names.add(name)
    return status_names - other_names


def _paren_close(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def check_file(sf, status_names):
    rules = {r.id: r for r in RULES}
    diags = []
    code = sf.code
    for m in CALL_RE.finditer(code):
        name = m.group(2)
        if name in KEYWORDS or name not in status_names:
            continue
        close = _paren_close(code, m.start(3))
        if close < 0:
            continue
        rest = code[close + 1:close + 64].lstrip()
        if rest.startswith(";"):
            diags.append(registry.Diagnostic(
                sf.rel, sf.line_of(m.start(2)), rules["status/discarded"],
                f"{m.group(1)}{name}(...)".replace(" ", ""),
                "call result is a Status/StatusOr and the statement "
                "discards it"))
    for m in VOID_CAST_RE.finditer(code):
        name = m.group(2)
        if name not in status_names:
            continue
        diags.append(registry.Diagnostic(
            sf.rel, sf.line_of(m.start(2)), rules["status/void-cast"],
            f"(void){m.group(1)}{name}(...)".replace(" ", ""),
            "explicit discard of a Status-returning call"))
    return diags


def run(files):
    status_names = harvest(files)
    diags = []
    for sf in files:
        diags.extend(check_file(sf, status_names))
    return diags
