"""Guarded-by coverage pass: mutex-holding classes annotate their state.

Any class or struct that declares a `Mutex`/`SharedMutex` member is a
concurrency boundary: every mutable data member must either carry
`SGNN_GUARDED_BY`/`SGNN_PT_GUARDED_BY` (making unlocked access a compile
error under Clang's `-Werror=thread-safety`) or be exempt by construction.

Exempt by construction, with no annotation needed:
  * `const`/`constexpr`/`static` members (immutable or not per-instance),
  * `std::atomic<...>` members (internally synchronized),
  * `std::condition_variable(_any)` (self-synchronizing),
  * the `Mutex`/`SharedMutex` members themselves,
  * members of the library's self-synchronized types (SELF_SYNCHRONIZED
    below): their own locks guard their state.

Everything else needs the annotation or an inline suppression whose
justification says why unguarded access is sound (the usual reason:
written once during single-threaded initialisation, before sharing).

Heuristics, documented so their blind spots are known: members are
recognised by Google-style trailing-underscore names or plain identifiers
in annotation-free structs; function-typed members whose declarator needs
parentheses (e.g. `std::function<void()>`) are skipped.
"""

import re

from . import registry
from . import scanner

RULES = [
    registry.Rule(
        "lock/unannotated-field",
        "this class declares a Mutex/SharedMutex, so every mutable field "
        "must be SGNN_GUARDED_BY/SGNN_PT_GUARDED_BY one of its locks (or "
        "carry a suppression saying why unguarded access is sound)",
        fixture="lock-unannotated-field.cc.fixture"),
]

# Types whose instances synchronize themselves; fields of these types need
# no guard. Keep in sync with the DESIGN.md rule catalog.
SELF_SYNCHRONIZED = (
    "BoundedMpmcQueue",
    "ThreadPool",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "TickClock",
    "CircuitBreaker",
    "FaultInjector",
    "ServeMetrics",
)

CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+(?:SGNN_\w+(?:\s*\([^)]*\))?\s+)*"
    r"(?:alignas\s*\([^)]*\)\s*)?"
    r"(\w+)(?:\s+final)?\s*(?::[^{;]*)?\{")

MUTEX_DECL_RE = re.compile(
    r"(?:^|\s)(?:mutable\s+)?(?:\w+::)*(?:Mutex|SharedMutex)\s+\w+\s*$")

FIELD_RE = re.compile(
    r"^(?P<type>.+?[\s>&*])(?P<name>[A-Za-z_]\w*)"
    r"\s*(?:\[\s*\w*\s*\])?\s*$", re.DOTALL)

STMT_SKIP_RE = re.compile(
    r"^(?:using|typedef|friend|static_assert|template|enum|class|struct|"
    r"union|explicit|operator|public|private|protected)\b")

NON_FIELD_NAMES = {
    "const", "default", "delete", "override", "final", "noexcept",
    "delete[]", "operator", "0",
}


def _strip_initializer(stmt):
    """Cuts the statement at the first top-level `=` (a default member
    initialiser). An `=` inside parentheses is a default *argument* of a
    function declaration and must not truncate the declarator."""
    depth = 0
    for i, c in enumerate(stmt):
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            return stmt[:i]
    return stmt


def _statements(code, begin, end):
    """Depth-0 statements of a class body as (offset, text) pairs. Nested
    braces (function bodies, nested classes, brace initialisers) are
    skipped, so a statement is what precedes each member-level `;`."""
    stmts = []
    depth_brace = 0
    depth_paren = 0
    start = begin
    i = begin
    buf = []
    while i < end:
        c = code[i]
        if c == "{":
            skip_to = scanner.match_brace(code, i)
            if skip_to < 0 or skip_to > end:
                break
            i = skip_to
            continue
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren = max(0, depth_paren - 1)
        elif c == ";" and depth_paren == 0 and depth_brace == 0:
            stmts.append((start, "".join(buf)))
            buf = []
            i += 1
            start = i
            continue
        buf.append(c)
        i += 1
    return stmts


def _class_bodies(code, begin=0, end=None):
    """Yields (name, body_begin, body_end) for every class/struct with a
    braced body in code[begin:end], recursively."""
    if end is None:
        end = len(code)
    pos = begin
    while pos < end:
        m = CLASS_HEAD_RE.search(code, pos, end)
        if not m:
            return
        brace = m.end() - 1
        close = scanner.match_brace(code, brace)
        if close < 0 or close > end:
            pos = m.end()
            continue
        yield (m.group(2), brace + 1, close - 1)
        yield from _class_bodies(code, brace + 1, close - 1)
        pos = close


def _strip_label(stmt):
    return re.sub(r"^\s*(?:public|private|protected)\s*:(?!:)", "", stmt)


def _field_of(stmt):
    """Parses a member statement into (type_text, name, annotated) or None
    when it is not a data-member declaration."""
    stmt = _strip_label(stmt).strip()
    if not stmt or STMT_SKIP_RE.match(stmt):
        return None
    annotated = bool(
        re.search(r"SGNN_(?:PT_)?GUARDED_BY\s*\(", stmt))
    # Annotations and attributes out of the way, initialiser off the tail.
    pruned = re.sub(r"SGNN_\w+\s*(?:\([^()]*\))?", " ", stmt)
    pruned = re.sub(r"\[\[[^\]]*\]\]", " ", pruned)
    pruned = _strip_initializer(pruned).strip()
    if not pruned or pruned.endswith((")", ">", "&", "*", ",", ":")):
        # Function declaration, macro residue, or declarator we don't model.
        return None
    m = FIELD_RE.match(pruned)
    if not m:
        return None
    name = m.group("name")
    if name in NON_FIELD_NAMES:
        return None
    type_text = m.group("type").strip()
    if not type_text:
        return None
    return (type_text, name, annotated)


def _exempt(type_text, stmt):
    if re.match(r"^\s*(?:static|constexpr)\b", stmt):
        return True
    if re.search(r"\bconst\b", type_text):
        return True
    if re.search(r"\batomic\s*<", type_text):
        return True
    if re.search(r"\bcondition_variable(?:_any)?\b", type_text):
        return True
    if re.search(r"\b(?:Mutex|SharedMutex)\b", type_text):
        return True
    for t in SELF_SYNCHRONIZED:
        if re.search(rf"\b{t}\b", type_text):
            return True
    return False


def check_file(sf):
    rule = RULES[0]
    diags = []
    code = sf.code
    for cls_name, begin, end in _class_bodies(code):
        stmts = _statements(code, begin, end)
        has_mutex = any(
            MUTEX_DECL_RE.search(
                re.sub(r"SGNN_\w+\s*(?:\([^()]*\))?", " ",
                       _strip_label(text)).rstrip())
            for _, text in stmts)
        if not has_mutex:
            continue
        for offset, text in stmts:
            parsed = _field_of(text)
            if parsed is None:
                continue
            type_text, name, annotated = parsed
            if annotated or _exempt(type_text, _strip_label(text).strip()):
                continue
            # Point at the declaration's last line (where the name sits).
            line = sf.line_of(offset + len(text) - len(text.lstrip()))
            last = sf.line_of(offset + len(text) - 1)
            for cand in range(line, last + 1):
                if re.search(rf"\b{re.escape(name)}\b",
                             sf.code_line(cand) or ""):
                    line = cand
                    break
            diags.append(registry.Diagnostic(
                sf.rel, line, rule, f"{cls_name}::{name}",
                f"mutable field '{name}' in mutex-holding class "
                f"'{cls_name}' lacks SGNN_GUARDED_BY"))
    return diags


def run(files):
    diags = []
    for sf in files:
        diags.extend(check_file(sf))
    return diags
