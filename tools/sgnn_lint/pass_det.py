"""Determinism pass: the replay story holds only if no code path consults
unseeded entropy, wall clocks that feed results, hash-order iteration, or
raw primitives outside their sanctioned module.

Absorbs and supersedes the former tools/lint_determinism.py:
  * tree-wide bans (det/random-device, det/system-clock, det/c-rand,
    det/assert) with the same patterns and the same wrapper allowlist;
  * scoped bans whose prefix has a stronger contract (det/obs-wallclock:
    sgnn::obs is logical-tick only; det/par-raw-thread: sgnn::par must
    schedule through common::ThreadPool);
  * confined bans, the inverse: raw I/O only under src/storage/
    (det/raw-io), process/signal syscalls only under src/dist/
    (det/process-syscall), TCP socket/epoll syscalls only under src/net/
    (det/net-syscall).

New in sgnn-lint, for deterministic paths under src/:
  * det/unordered-iteration -- range-for over an `unordered_map`/
    `unordered_set` visits elements in hash-table order, which is a
    function of insertion history, libstdc++ version, and pointer values;
    results that feed RNG draws or output ordering silently diverge.
    Sort into a vector first.
  * det/pointer-keyed-order -- `map`/`set` keyed by a pointer orders by
    address, which ASLR re-rolls every run.
"""

import re

from . import registry

# Wrapper files allowed to touch the primitives they encapsulate.
ALLOWLIST = {
    "src/common/rng.h",
    "src/common/rng.cc",
    "src/common/timer.h",
    "src/common/timer.cc",
}

RULES = [
    registry.Rule(
        "det/random-device",
        "std::random_device is unseeded entropy; use common::Rng(seed) so "
        "runs replay",
        fixture="det-random-device.cc.fixture"),
    registry.Rule(
        "det/system-clock",
        "system_clock is wall time and feeds results; use common::WallTimer "
        "(steady) for reporting",
        fixture="det-system-clock.cc.fixture"),
    registry.Rule(
        "det/c-rand",
        "rand()/srand() is hidden-global-state C PRNG; use common::Rng",
        fixture="det-c-rand.cc.fixture"),
    registry.Rule(
        "det/assert",
        "assert() compiles out under NDEBUG (the default Release build) and "
        "checks nothing; use SGNN_CHECK / SGNN_DCHECK",
        fixture="det-assert.cc.fixture"),
    registry.Rule(
        "det/obs-wallclock",
        "sgnn::obs promises byte-identical exports from logical ticks only; "
        "any clock -- even steady ones -- is forbidden there",
        fixture="det-obs-wallclock.cc.fixture",
        fixture_rel="src/obs/fixture.cc"),
    registry.Rule(
        "det/par-raw-thread",
        "sgnn::par promises bit-identical results for any worker count, "
        "which holds only when every thread comes from common::ThreadPool",
        fixture="det-par-raw-thread.cc.fixture",
        fixture_rel="src/par/fixture.cc"),
    registry.Rule(
        "det/raw-io",
        "raw file I/O (mmap, open, C stdio) is confined to src/storage/, "
        "where the resident-budget accounting lives; bytes read elsewhere "
        "escape the budget",
        fixture="det-raw-io.cc.fixture"),
    registry.Rule(
        "det/process-syscall",
        "process/socket/signal syscalls are confined to src/dist/: workers "
        "that escape the coordinator's spawn/reap bookkeeping break replayable "
        "kill schedules and bit-identity",
        fixture="det-process-syscall.cc.fixture"),
    registry.Rule(
        "det/net-syscall",
        "TCP socket and epoll syscalls are confined to src/net/, where the "
        "fault injector sees every accept/read and the front door's "
        "shutdown drain owns every fd; a socket opened elsewhere escapes "
        "both, so injected network faults no longer replay",
        fixture="det-net-syscall.cc.fixture"),
    registry.Rule(
        "det/simd-intrinsics",
        "vector intrinsics are confined to src/simd/, where each AVX2 "
        "kernel is paired with the bit-identical scalar fallback the "
        "SGNN_SIMD=off CI leg proves; an intrinsic elsewhere has no paired "
        "fallback and silently diverges on older CPUs",
        fixture="det-simd-intrinsics.cc.fixture"),
    registry.Rule(
        "det/unordered-iteration",
        "iterating an unordered container visits hash-table order -- a "
        "function of insertion history and library version; sort the "
        "elements into a vector before iterating in a deterministic path",
        fixture="det-unordered-iteration.cc.fixture"),
    registry.Rule(
        "det/pointer-keyed-order",
        "a map/set keyed by a pointer orders by address, which ASLR "
        "re-rolls every run; key by a stable id instead",
        fixture="det-pointer-keyed-order.cc.fixture"),
]

_R = {r.id: r for r in RULES}

# (rule, token-name, pattern) applied tree-wide to comment-stripped lines.
FORBIDDEN = [
    (_R["det/random-device"], "std::random_device",
     re.compile(r"std::random_device")),
    (_R["det/system-clock"], "system_clock",
     re.compile(r"system_clock")),
    (_R["det/c-rand"], "rand(",
     re.compile(r"(?<![_\w])s?rand\s*\(")),
    (_R["det/assert"], "assert(",
     re.compile(r"(?<![_\w])assert\s*\(")),
]

# Stricter rules for path prefixes whose contract is stronger.
SCOPED_FORBIDDEN = {
    "src/obs/": [
        (_R["det/obs-wallclock"], "std::chrono",
         re.compile(r"std::chrono|steady_clock|high_resolution_clock")),
    ],
    "src/par/": [
        (_R["det/par-raw-thread"], "std::thread",
         re.compile(r"std::(thread|jthread|async)\b")),
    ],
}

# Rules that apply everywhere EXCEPT under the confining prefix.
CONFINED_FORBIDDEN = {
    "src/storage/": [
        (_R["det/raw-io"], "mmap(",
         re.compile(r"(?<![_\w])m(?:un)?map\s*\(")),
        (_R["det/raw-io"], "open(",
         re.compile(r"(?<![_\w.:>])open\s*\(")),
        (_R["det/raw-io"], "C stdio",
         re.compile(r"(?<![_\w])(?:fopen|fread|fwrite|pread|pwrite)\s*\(")),
    ],
    "src/dist/": [
        (_R["det/process-syscall"], "fork(",
         re.compile(r"(?<![_\w])(?:fork|vfork|socketpair|pipe2?)\s*\(")),
        (_R["det/process-syscall"], "kill(",
         re.compile(
             r"(?<![_\w])(?:kill|waitpid|signal|sigaction|_exit)\s*\(")),
    ],
    "src/simd/": [
        (_R["det/simd-intrinsics"], "immintrin.h",
         re.compile(r"#\s*include\s*<(?:imm|x86|avx|avx2|emm|xmm)intrin\.h>")),
        (_R["det/simd-intrinsics"], "_mm intrinsic",
         re.compile(r"(?<![_\w])_mm(?:\d+)?_\w+\s*\(")),
        (_R["det/simd-intrinsics"], "__m vector type",
         re.compile(r"(?<![_\w])__m(?:128|256|512)[id]?\b")),
    ],
    "src/net/": [
        (_R["det/net-syscall"], "socket(",
         re.compile(
             r"(?<![_\w])(?:socket|bind|listen|accept4?|connect"
             r"|setsockopt|getsockname|inet_pton)\s*\(")),
        (_R["det/net-syscall"], "recv(",
         re.compile(
             r"(?<![_\w])(?:recv(?:from|msg)?|send(?:to|msg)?"
             r"|epoll_create1?|epoll_ctl|epoll_p?wait)\s*\(")),
    ],
}

# Declares an unordered container variable (value, reference, or element of
# a wrapper like std::vector<std::unordered_set<...>> -- the captured name
# is whatever identifier follows the closing angle brackets).
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>[>\s]*&?\s*(\w+)\s*[;,=({\[)]")

POINTER_KEY_RE = re.compile(
    r"(?<!unordered_)(?:\bstd::)?\b(?:map|set)\s*<[^<>;]*\*\s*[,>]")


def _line_rules(rel):
    rules = list(FORBIDDEN)
    for prefix, extra in SCOPED_FORBIDDEN.items():
        if rel.startswith(prefix):
            rules.extend(extra)
    for prefix, extra in CONFINED_FORBIDDEN.items():
        if not rel.startswith(prefix):
            rules.extend(extra)
    return rules


def check_file(sf, deterministic_path=None):
    """Lints one file. `deterministic_path` controls the src/-only rules
    (unordered iteration, pointer keys); by default it is derived from the
    file's path."""
    if sf.rel in ALLOWLIST:
        return []
    diags = []
    rules = _line_rules(sf.rel)
    for lineno, line in enumerate(sf.code_lines, start=1):
        for rule, token, pattern in rules:
            if pattern.search(line):
                diags.append(registry.Diagnostic(
                    sf.rel, lineno, rule, token,
                    sf.raw_line(lineno).strip()))
    if deterministic_path is None:
        deterministic_path = sf.rel.startswith("src/")
    if deterministic_path:
        diags.extend(_check_unordered(sf))
        diags.extend(_check_pointer_keys(sf))
    return diags


def _check_unordered(sf):
    diags = []
    names = set(UNORDERED_DECL_RE.findall(sf.code))
    if not names:
        return diags
    pattern = re.compile(
        r"for\s*\([^;()]*:\s*&?(" + "|".join(map(re.escape, sorted(names)))
        + r")\b")
    for lineno, line in enumerate(sf.code_lines, start=1):
        m = pattern.search(line)
        if m:
            diags.append(registry.Diagnostic(
                sf.rel, lineno, _R["det/unordered-iteration"],
                f"for (... : {m.group(1)})", sf.raw_line(lineno).strip()))
    return diags


def _check_pointer_keys(sf):
    diags = []
    for lineno, line in enumerate(sf.code_lines, start=1):
        m = POINTER_KEY_RE.search(line)
        if m:
            diags.append(registry.Diagnostic(
                sf.rel, lineno, _R["det/pointer-keyed-order"],
                m.group(0).strip(), sf.raw_line(lineno).strip()))
    return diags


def run(files):
    diags = []
    for sf in files:
        diags.extend(check_file(sf))
    return diags
