"""Driver: runs all five passes repo-wide in one invocation.

Usage:
  tools/sgnn_lint.py [--root DIR] [--pass NAME]   # lint the repo
  tools/sgnn_lint.py --self-test [--root DIR]     # per-rule fixture proofs
  tools/sgnn_lint.py --list-rules                 # rule catalog
"""

import argparse
import pathlib

from . import config
from . import pass_billing
from . import pass_det
from . import pass_layering
from . import pass_lock
from . import pass_status
from . import registry
from . import scanner
from . import selftest

EXTENSIONS = {".h", ".cc", ".cpp", ".hpp"}
SCAN_ROOTS = ["src", "tests", "bench", "examples"]

#: pass name -> (module, path filter over repo-relative paths).
PASSES = {
    "layering": (pass_layering, lambda rel: rel.startswith("src/")),
    "status": (pass_status, lambda rel: True),
    "lock": (pass_lock, lambda rel: rel.startswith("src/")),
    "det": (pass_det, lambda rel: True),
    "billing": (pass_billing, lambda rel: rel.startswith("src/")),
}

META_RULES = [
    registry.Rule(
        "meta/bad-suppression",
        "a suppression must name a known rule id and carry a justification "
        "(`// sgnn-lint: allow(<rule-id>): <why>`); anything less is an "
        "unaudited escape hatch",
        fixture="meta-bad-suppression.cc.fixture"),
]


def build_registry():
    reg = registry.RuleRegistry()
    for mod, _ in PASSES.values():
        for rule in mod.RULES:
            reg.add(rule)
    for rule in META_RULES:
        reg.add(rule)
    return reg


def load_tree(root):
    """Reads every scannable file under the scan roots into SourceFiles."""
    files = []
    for scan_root in SCAN_ROOTS:
        base = root / scan_root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in EXTENSIONS or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            text = path.read_text(encoding="utf-8", errors="replace")
            files.append(scanner.SourceFile(rel, text))
    return files


def run_passes(root, files, pass_names):
    layer_cfg = config.load(root / "tools" / "sgnn_lint" / "layers.toml")
    diags = []
    for name in pass_names:
        mod, accepts = PASSES[name]
        selected = [sf for sf in files if accepts(sf.rel)]
        if name == "layering":
            diags.extend(mod.run(selected, layer_cfg))
        else:
            diags.extend(mod.run(selected))
    return diags


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sgnn_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None, help="repo root to lint")
    parser.add_argument("--pass", dest="passes", action="append",
                        choices=sorted(PASSES), default=None,
                        help="run only this pass (repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="prove every rule fires on its fixture and "
                             "stays silent on a clean file")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent.parent
    reg = build_registry()

    if args.list_rules:
        for rule in reg.all():
            print(f"{rule.id:32} {rule.rationale}")
        return 0

    if args.self_test:
        return selftest.run(root, reg)

    files = load_tree(root)
    by_rel = {sf.rel: sf for sf in files}
    pass_names = args.passes or sorted(PASSES)
    diags = run_passes(root, files, pass_names)
    diags = registry.apply_suppressions(reg, by_rel, diags)
    for diag in diags:
        print(diag.render())
    if diags:
        print(f"\nsgnn-lint: {len(diags)} finding(s) across "
              f"{len({d.rel for d in diags})} file(s). Fix the code, or "
              "annotate an audited exception with "
              "`// sgnn-lint: allow(<rule-id>): <justification>`.")
        return 1
    print(f"sgnn-lint clean: {len(pass_names)} pass(es), "
          f"{len(files)} file(s)")
    return 0
