"""Rule registry and diagnostics.

Every rule has a stable id (`<pass>/<name>`) that suppression comments and
the fixture self-test refer to; renaming an id is an interface break. A
`Diagnostic` is a first-offender record in the `sgnn::analysis` style:
file:line, the offending token, and the rule's rationale.
"""


class Rule:
    def __init__(self, rule_id, rationale, fixture=None, fixture_rel=None):
        #: Stable identifier, e.g. "det/c-rand". Pass name is the prefix.
        self.id = rule_id
        #: One-line reason the construct is banned (printed with findings).
        self.rationale = rationale
        #: Negative fixture under tools/lint_fixtures/ that must trip the
        #: rule (checked by --self-test), e.g. "det-c-rand.cc.fixture".
        self.fixture = fixture
        #: Repo-relative path the fixture is linted *as*, for rules whose
        #: verdict depends on the path (scoped/confined/layer rules).
        self.fixture_rel = fixture_rel or "src/graph/fixture.cc"

    @property
    def pass_name(self):
        return self.id.split("/", 1)[0]


class Diagnostic:
    def __init__(self, rel, line, rule, token, detail=""):
        self.rel = rel
        self.line = line          # 1-based
        self.rule = rule
        self.token = token        # offending token / construct
        self.detail = detail      # optional extra context

    def render(self):
        msg = f"{self.rel}:{self.line}: [{self.rule.id}] `{self.token}`"
        if self.detail:
            msg += f" -- {self.detail}"
        return f"{msg}\n    rationale: {self.rule.rationale}"

    def key(self):
        return (self.rel, self.line, self.rule.id, self.token)


class RuleRegistry:
    """All rules of all passes, keyed by stable id."""

    def __init__(self):
        self._rules = {}

    def add(self, rule):
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id: {rule.id}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id):
        return self._rules.get(rule_id)

    def __contains__(self, rule_id):
        return rule_id in self._rules

    def all(self):
        return [self._rules[k] for k in sorted(self._rules)]


def apply_suppressions(registry, files_by_rel, diagnostics):
    """Drops diagnostics covered by a well-formed allow() on their line and
    emits `meta/bad-suppression` findings for malformed or unknown-rule
    suppressions. Returns the surviving diagnostics."""
    bad_rule = registry.get("meta/bad-suppression")
    out = []
    for diag in diagnostics:
        sf = files_by_rel.get(diag.rel)
        if sf is not None and diag.line in sf.suppressed_lines(diag.rule.id):
            continue
        out.append(diag)
    for rel, sf in sorted(files_by_rel.items()):
        for s in sf.suppressions:
            if not s.justification:
                out.append(Diagnostic(
                    rel, s.line, bad_rule, f"allow({s.rule_id})",
                    "suppression lacks the mandatory justification"))
            elif s.rule_id not in registry:
                out.append(Diagnostic(
                    rel, s.line, bad_rule, f"allow({s.rule_id})",
                    "suppression names an unknown rule id"))
    out.sort(key=Diagnostic.key)
    return out
