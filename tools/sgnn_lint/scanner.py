"""Comment/string-aware C++ source scanner shared by every lint pass.

The passes never regex raw text: they see `SourceFile.code`, where comments
and string/char literals are blanked out (newlines preserved, so offsets and
line numbers agree with the raw file), and `SourceFile.suppressions`, parsed
from the *raw* text because suppressions live inside comments.
"""

import bisect
import re


SUPPRESS_RE = re.compile(
    r"sgnn-lint:\s*allow\(\s*([^)\s]+)\s*\)\s*:?\s*(.*?)\s*(?:\*/.*)?$")


class Suppression:
    """One `// sgnn-lint: allow(rule): justification` comment."""

    def __init__(self, line, rule_id, justification):
        self.line = line                      # 1-based line it appears on
        self.rule_id = rule_id
        self.justification = justification    # may be empty => malformed


def strip_comments(text):
    """Blanks out //, /* */ comments and string/char literals, preserving
    newlines so offsets and line numbers stay aligned with the raw text."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class SourceFile:
    """A scanned source file: raw text, comment-stripped code, line index,
    and the suppression comments found in it."""

    def __init__(self, rel, text):
        self.rel = rel
        self.text = text
        self.code = strip_comments(text)
        self.raw_lines = text.splitlines()
        self.code_lines = self.code.splitlines()
        # Offsets of line starts in `code`, for offset -> line translation.
        self._line_starts = [0]
        for m in re.finditer(r"\n", self.code):
            self._line_starts.append(m.end())
        self.suppressions = self._parse_suppressions()

    def line_of(self, offset):
        """1-based line number of a character offset into `code`."""
        return bisect.bisect_right(self._line_starts, offset)

    def raw_line(self, lineno):
        """The raw text of a 1-based line (empty if out of range)."""
        if 1 <= lineno <= len(self.raw_lines):
            return self.raw_lines[lineno - 1]
        return ""

    def code_line(self, lineno):
        if 1 <= lineno <= len(self.code_lines):
            return self.code_lines[lineno - 1]
        return ""

    def _parse_suppressions(self):
        found = []
        for lineno, raw in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(raw)
            if m:
                found.append(Suppression(lineno, m.group(1), m.group(2)))
        return found

    def suppressed_lines(self, rule_id):
        """Lines on which findings of `rule_id` are suppressed by a
        well-formed allow() comment: the comment's own line, plus -- when the
        comment stands alone (no code on its line) -- the rest of its
        contiguous comment block and the first code line after it, so a
        justification may run to several comment lines."""
        lines = set()
        for s in self.suppressions:
            if s.rule_id != rule_id or not s.justification:
                continue
            lines.add(s.line)
            cur = s.line
            while (not self.code_line(cur).strip()
                   and self.raw_line(cur).strip()
                   and cur <= len(self.raw_lines)):
                cur += 1
                lines.add(cur)
        return lines


def match_paren(code, open_idx):
    """Index just past the `)` matching the `(` at `open_idx`, or -1 if the
    parenthesis never closes (malformed / macro soup)."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def match_brace(code, open_idx):
    """Index just past the `}` matching the `{` at `open_idx`, or -1."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1
