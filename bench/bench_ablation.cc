// E14 — Ablations of the library's own design choices, so the defaults in
// DESIGN.md are backed by numbers rather than convention:
//   * GCN renormalisation: self-loops on/off (off loses accuracy and can
//     oscillate on bipartite-ish structure),
//   * APPNP restart weight alpha: small alpha = deeper smoothing; the
//     useful range is wide on homophilous graphs but collapses as
//     alpha -> 1 (no propagation),
//   * GraphSAGE fanout: diminishing returns past ~10 on modest-degree
//     graphs while per-epoch cost keeps growing,
//   * Combined-embedding channels: identity / low-pass / high-pass each
//     ablated on a neutral-mixing (h = 1/k) graph, where the high-pass
//     channel carries the signal.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "models/sage.h"

namespace {

using sgnn::core::Dataset;

const Dataset& Homophilous() {
  // Deliberately hard: sparse graph, very noisy features, so ablation
  // deltas are visible rather than saturating at 100% accuracy.
  static const Dataset& d = *new Dataset([] {
    sgnn::core::SbmDatasetConfig config;
    config.sbm = {.num_nodes = 3000, .num_classes = 4, .avg_degree = 6.0,
                  .homophily = 0.8};
    config.feature_dim = 16;
    config.feature_noise = 1.6;
    return sgnn::core::MakeSbmDataset(config, 43);
  }());
  return d;
}

const Dataset& NeutralMixing() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(3000, 4, 12.0, 0.25, 43));
  return d;
}

void BM_GcnSelfLoops(benchmark::State& state) {
  const bool self_loops = state.range(0) != 0;
  const Dataset& d = Homophilous();
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainGcn(d.graph, d.features, d.labels, d.splits,
                                    sgnn::bench::BenchTrainConfig(),
                                    sgnn::models::GcnConfig{self_loops});
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_GcnSelfLoops)
    ->Arg(1)->Arg(0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AppnpAlpha(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 100.0;
  const Dataset& d = Homophilous();
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainAppnp(
        d.graph, d.features, d.labels, d.splits,
        sgnn::bench::BenchTrainConfig(),
        sgnn::models::AppnpConfig{.alpha = alpha, .hops = 10});
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_AppnpAlpha)
    ->Arg(5)->Arg(15)->Arg(50)->Arg(95)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SageFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  const Dataset& d = Homophilous();
  auto config = sgnn::bench::BenchTrainConfig();
  config.epochs = 15;
  config.batch_size = 128;
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    sgnn::common::GlobalCounters().Reset();
    result = sgnn::models::TrainSage(
        d.graph, d.features, d.labels, d.splits, config,
        sgnn::models::SageConfig{.fanouts = {fanout, fanout}});
  }
  state.counters["test_acc"] = result.report.test_accuracy;
  state.counters["edges_touched"] =
      static_cast<double>(result.ops.edges_touched);
}
BENCHMARK(BM_SageFanout)
    ->Arg(2)->Arg(5)->Arg(10)->Arg(25)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_EmbeddingChannels(benchmark::State& state) {
  // Bit mask: 1 = identity, 2 = low-pass, 4 = high-pass.
  const int mask = static_cast<int>(state.range(0));
  const Dataset& d = NeutralMixing();
  sgnn::models::SpectralDecoupledConfig spectral;
  spectral.include_high_pass = (mask & 4) != 0;
  // Identity/low-pass toggles are exposed via the embedding config inside
  // the model; emulate "low-pass only" with SGC and full sets with the
  // spectral model for the two informative comparisons.
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    if (mask == 2) {
      result = sgnn::models::TrainSgc(d.graph, d.features, d.labels,
                                      d.splits,
                                      sgnn::bench::BenchTrainConfig(),
                                      sgnn::models::SgcConfig{.hops = 4});
    } else {
      result = sgnn::models::TrainSpectralDecoupled(
          d.graph, d.features, d.labels, d.splits,
          sgnn::bench::BenchTrainConfig(), spectral);
    }
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_EmbeddingChannels)
    ->Arg(2)   // low-pass only (SGC)
    ->Arg(3)   // identity + low-pass
    ->Arg(7)   // identity + low-pass + high-pass
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
