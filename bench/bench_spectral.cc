// E6 — Spectral embeddings under heterophily (§3.2.1, LD2/UniFilter):
// accuracy of low-pass-only (SGC) vs combined low/high-pass decoupled
// embeddings vs coupled GCN across the homophily dial. The crossover: all
// match on homophilous graphs; low-pass collapses at neutral mixing
// (h = 1/k) while the multi-channel model holds. Also: filter-fitting
// accuracy per basis/degree (the adaptive-basis claim).

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "spectral/filters.h"

namespace {

sgnn::core::Dataset DatasetAtHomophily(int percent) {
  return sgnn::bench::MakeBenchDataset(3000, 4, 12.0,
                                       static_cast<double>(percent) / 100.0,
                                       11);
}

void BM_SgcAccuracy(benchmark::State& state) {
  auto d = DatasetAtHomophily(static_cast<int>(state.range(0)));
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainSgc(d.graph, d.features, d.labels, d.splits,
                                    sgnn::bench::BenchTrainConfig(),
                                    sgnn::models::SgcConfig{.hops = 4});
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_SgcAccuracy)
    ->Arg(5)->Arg(25)->Arg(50)->Arg(75)->Arg(95)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_CombinedAccuracy(benchmark::State& state) {
  auto d = DatasetAtHomophily(static_cast<int>(state.range(0)));
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainSpectralDecoupled(
        d.graph, d.features, d.labels, d.splits,
        sgnn::bench::BenchTrainConfig());
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_CombinedAccuracy)
    ->Arg(5)->Arg(25)->Arg(50)->Arg(75)->Arg(95)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_GcnAccuracy(benchmark::State& state) {
  auto d = DatasetAtHomophily(static_cast<int>(state.range(0)));
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainGcn(d.graph, d.features, d.labels, d.splits,
                                    sgnn::bench::BenchTrainConfig());
  }
  state.counters["test_acc"] = result.report.test_accuracy;
}
BENCHMARK(BM_GcnAccuracy)
    ->Arg(5)->Arg(25)->Arg(50)->Arg(75)->Arg(95)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_FilterFit(benchmark::State& state) {
  // Mean |g_fit - g_target| over [0,2] for the band-reject response, per
  // basis and degree: the adaptive-basis expressiveness table.
  const auto basis = static_cast<sgnn::spectral::PolyBasis>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  double err = 0.0;
  for (auto _ : state) {
    auto filter = sgnn::spectral::FitFilter(
        basis, degree, sgnn::spectral::BandRejectResponse, 128, 1.0, 1.0);
    err = 0.0;
    for (int i = 0; i < 64; ++i) {
      const double lambda = 2.0 * (i + 0.5) / 64;
      err += std::fabs(sgnn::spectral::EvaluateResponse(filter, lambda) -
                       sgnn::spectral::BandRejectResponse(lambda));
    }
    err /= 64;
    benchmark::DoNotOptimize(err);
  }
  state.counters["mean_abs_err"] = err;
}
BENCHMARK(BM_FilterFit)
    ->ArgsProduct({{0, 1, 2}, {4, 8, 16}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
