// E24 — Network serving over loopback: the epoll HTTP front door in
// front of the E17 batching server. The in-process Submit path (E17)
// prices the model and the cache; this soak prices everything the wire
// adds — accept, HTTP parse, multi-tenant admission (token buckets +
// DWRR), JSON render, and ordered pipelined writes — and shows the two
// knobs that matter: pipelining depth amortises the per-round-trip
// syscalls, and under a Zipf tenant mix the weighted-fair dequeue keeps
// heavy hitters from starving the tail while quotas convert overload
// into fast 429s instead of queue bloat.
// Series: req/s vs pipeline depth; req/s + per-status counts vs tenant
// count under a Zipf tenant mix.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/client.h"
#include "net/json.h"
#include "net/server.h"
#include "nn/mlp.h"
#include "serve/admission.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"

namespace {

using sgnn::graph::NodeId;
using sgnn::net::HttpClient;
using sgnn::net::HttpFrontDoor;
using sgnn::net::HttpFrontDoorConfig;
using sgnn::net::HttpResponse;
using sgnn::serve::BatchingServer;
using sgnn::serve::FrozenModel;
using sgnn::serve::InferenceRequest;
using sgnn::serve::ServeConfig;
using sgnn::serve::TenantQuota;

constexpr int64_t kEmbedDim = 16;
constexpr int kClasses = 4;
constexpr NodeId kNodes = 4096;

FrozenModel BenchModel() {
  sgnn::common::Rng rng(17);
  sgnn::nn::Mlp mlp({kEmbedDim, kClasses}, /*dropout=*/0.0, &rng);
  return FrozenModel::FromMlp(mlp);
}

/// Synthetic embedder: the bench prices the network tier, not k-hop
/// propagation, so embeddings are a cheap pure function of the node id.
void FillEmbedding(NodeId node, std::span<float> out) {
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = 0.01f * static_cast<float>(node) + static_cast<float>(j);
  }
}

ServeConfig BenchServeConfig() {
  ServeConfig config;
  config.max_batch = 32;
  config.max_delay_micros = 100;
  config.queue_capacity = 1 << 16;
  config.num_workers = 2;
  return config;
}

std::string TenantName(size_t t) {
  std::string name = "t";
  name += std::to_string(t);
  return name;
}

std::string InferBody(NodeId node, const std::string& tenant = "") {
  std::string body = "{\"node\":" + std::to_string(node);
  if (!tenant.empty()) body += ",\"tenant\":\"" + tenant + "\"";
  return body + "}";
}

/// One server + front door pair on an ephemeral loopback port.
struct Loopback {
  explicit Loopback(HttpFrontDoorConfig door_config = HttpFrontDoorConfig())
      : server(
            BenchModel(),
            [](NodeId node, std::span<float> out) {
              FillEmbedding(node, out);
              return sgnn::common::Status::OK();
            },
            kNodes, BenchServeConfig()),
        door(&server, std::move(door_config)) {
    ok = door.Start().ok();
  }
  ~Loopback() {
    door.Shutdown();
    server.Shutdown();
  }

  BatchingServer server;
  HttpFrontDoor door;
  bool ok = false;
};

/// Zipf(s) sampler over ranks [0, n) via the precomputed CDF.
class Zipf {
 public:
  Zipf(size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(sgnn::common::Rng& rng) const {
    const double u = rng.Uniform();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

// ------------------------------------------------------------ benchmarks

/// Full-stack round trips through one keep-alive connection at pipeline
/// depth `state.range(0)`. Depth 1 is the classic request/response ping;
/// deeper pipelines amortise the write/read syscalls and let the batcher
/// actually form batches.
void BM_HttpPipelineDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Loopback loop;
  if (!loop.ok) {
    state.SkipWithError("front door failed to start");
    return;
  }
  auto client_or = HttpClient::Connect("127.0.0.1", loop.door.port());
  if (!client_or.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  HttpClient client = std::move(client_or).value();

  sgnn::common::Rng rng(7);
  const Zipf nodes(kNodes, 1.1);
  int64_t served = 0, errors = 0;
  for (auto _ : state) {
    for (int i = 0; i < depth; ++i) {
      const NodeId node = static_cast<NodeId>(nodes.Sample(rng));
      if (!client
               .SendRequest("POST", "/v1/infer", InferBody(node),
                            "application/json")
               .ok()) {
        state.SkipWithError("send failed");
        return;
      }
    }
    for (int i = 0; i < depth; ++i) {
      auto response = client.ReadResponse();
      if (!response.ok()) {
        state.SkipWithError("read failed");
        return;
      }
      response.value().status_code == 200 ? ++served : ++errors;
    }
  }
  state.SetItemsProcessed(served);  // items_per_second == req/s.
  state.counters["depth"] = depth;
  state.counters["errors"] = static_cast<double>(errors);
}
// Wall-clock rates: the server's work happens on its own threads, so
// main-thread CPU time would overstate req/s wildly.
BENCHMARK(BM_HttpPipelineDepth)->Arg(1)->Arg(8)->Arg(64)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// Zipf-distributed multi-tenant soak: `state.range(0)` tenants whose
/// traffic shares follow Zipf(1.1) rank order, each on its own keep-alive
/// connection, weights ascending (the busiest tenant has the *lowest*
/// weight, the adversarial case for fairness). Tenant 0 additionally
/// carries a token-bucket quota, so the hottest stream sheds into 429s
/// instead of monopolising the queue.
void BM_ZipfTenantSoak(benchmark::State& state) {
  const int num_tenants = static_cast<int>(state.range(0));
  HttpFrontDoorConfig door_config;
  for (int t = 0; t < num_tenants; ++t) {
    TenantQuota quota;
    quota.weight = static_cast<double>(t + 1);
    if (t == 0) {
      // The hottest tenant is capped at roughly a third of the dispatch
      // rate: bursts above the bucket turn into immediate 429s.
      quota.bucket_capacity = 64;
      quota.refill_per_dispatch = 0.35;
    }
    door_config.admission.tenants[TenantName(static_cast<size_t>(t))] = quota;
  }
  door_config.admission.per_tenant_capacity = 1 << 12;

  Loopback loop(door_config);
  if (!loop.ok) {
    state.SkipWithError("front door failed to start");
    return;
  }

  std::vector<HttpClient> clients;
  for (int t = 0; t < num_tenants; ++t) {
    auto client_or = HttpClient::Connect("127.0.0.1", loop.door.port());
    if (!client_or.ok()) {
      state.SkipWithError("connect failed");
      return;
    }
    clients.push_back(std::move(client_or).value());
  }

  sgnn::common::Rng rng(31);
  const Zipf tenant_pick(static_cast<size_t>(num_tenants), 1.1);
  const Zipf nodes(kNodes, 1.1);
  constexpr int kRequestsPerIter = 256;
  int64_t served = 0, quota_rejected = 0, other = 0;
  std::vector<int> outstanding(static_cast<size_t>(num_tenants));
  for (auto _ : state) {
    std::fill(outstanding.begin(), outstanding.end(), 0);
    for (int i = 0; i < kRequestsPerIter; ++i) {
      const size_t t = tenant_pick.Sample(rng);
      const NodeId node = static_cast<NodeId>(nodes.Sample(rng));
      if (!clients[t]
               .SendRequest("POST", "/v1/infer",
                            InferBody(node, TenantName(t)),
                            "application/json")
               .ok()) {
        state.SkipWithError("send failed");
        return;
      }
      ++outstanding[t];
    }
    for (size_t t = 0; t < outstanding.size(); ++t) {
      for (int i = 0; i < outstanding[t]; ++i) {
        auto response = clients[t].ReadResponse();
        if (!response.ok()) {
          state.SkipWithError("read failed");
          return;
        }
        switch (response.value().status_code) {
          case 200: ++served; break;
          case 429: ++quota_rejected; break;
          default: ++other; break;
        }
      }
    }
  }
  state.SetItemsProcessed(served);
  state.counters["tenants"] = num_tenants;
  state.counters["quota_429"] = static_cast<double>(quota_rejected);
  state.counters["other_errors"] = static_cast<double>(other);
}
BENCHMARK(BM_ZipfTenantSoak)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- smoke

bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

/// Seconds-scale CI pass. Returns 0 on success.
int RunSmoke() {
  int failures = 0;
  auto check = [&failures](const char* name, bool ok) {
    std::printf("%-32s %s\n", name, ok ? "OK" : "MISMATCH");
    if (!ok) ++failures;
  };

  // 1. Responses through the socket are bit-identical to in-process
  //    Submit against an identically seeded server.
  {
    Loopback loop;
    BatchingServer in_process(
        BenchModel(),
        [](NodeId node, std::span<float> out) {
          FillEmbedding(node, out);
          return sgnn::common::Status::OK();
        },
        kNodes, BenchServeConfig());
    bool started = loop.ok;
    bool identical = started;
    if (started) {
      auto client_or = HttpClient::Connect("127.0.0.1", loop.door.port());
      identical = client_or.ok();
      if (identical) {
        HttpClient client = std::move(client_or).value();
        for (const NodeId node : {NodeId(0), NodeId(7), NodeId(13), NodeId(7),
                                  NodeId(4095), NodeId(0)}) {
          auto http = client.Post("/v1/infer", InferBody(node));
          auto future_or = in_process.Submit(InferenceRequest(node));
          if (!http.ok() || http.value().status_code != 200 ||
              !future_or.ok()) {
            identical = false;
            break;
          }
          const std::string want =
              sgnn::net::RenderInferResponse(future_or.value().get());
          identical = identical && http.value().body == want;
        }
      }
    }
    check("net.bit_identity_vs_submit", identical);
    in_process.Shutdown();
  }

  // 2. Exact weighted-fair shares: three backlogged tenants with weights
  //    1:2:4 drain 5/10/20 in the first 35 dispatches (five full DWRR
  //    cycles), the same arithmetic the E24 acceptance bound quotes.
  {
    HttpFrontDoorConfig door_config;
    door_config.admission.tenants["a"].weight = 1.0;
    door_config.admission.tenants["b"].weight = 2.0;
    door_config.admission.tenants["c"].weight = 4.0;
    door_config.admission.record_dispatch_log = true;
    Loopback loop(door_config);
    bool fair = loop.ok;
    bool all_served = loop.ok;
    if (loop.ok) {
      loop.door.admission().Pause();
      std::map<std::string, HttpClient> clients;
      for (const std::string tenant : {"a", "b", "c"}) {
        auto client_or = HttpClient::Connect("127.0.0.1", loop.door.port());
        if (!client_or.ok()) {
          fair = all_served = false;
          break;
        }
        clients.emplace(tenant, std::move(client_or).value());
        for (int i = 0; i < 20; ++i) {
          if (!clients[tenant]
                   .SendRequest("POST", "/v1/infer",
                                InferBody(static_cast<NodeId>(i), tenant),
                                "application/json")
                   .ok()) {
            fair = all_served = false;
          }
        }
      }
      fair = fair && WaitFor([&loop] {
               return loop.door.admission().TotalQueued() == 60;
             });
      loop.door.admission().Resume();
      for (auto& [tenant, client] : clients) {
        for (int i = 0; i < 20; ++i) {
          auto response = client.ReadResponse();
          all_served = all_served && response.ok() &&
                       response.value().status_code == 200;
        }
      }
      std::map<std::string, int> first35;
      const std::vector<std::string> log = loop.door.admission().DispatchLog();
      for (size_t i = 0; i < log.size() && i < 35; ++i) ++first35[log[i]];
      fair = fair && first35["a"] == 5 && first35["b"] == 10 &&
             first35["c"] == 20;
      std::printf("dispatch shares (first 35): a=%d b=%d c=%d (want 5/10/20)\n",
                  first35["a"], first35["b"], first35["c"]);
    }
    check("net.dwrr_shares_exact", fair);
    check("net.saturated_all_served", all_served);
  }

  // 3. A Zipf burst across four tenants comes back fully answered with
  //    only 200s (no quotas, breaker closed — nothing may shed).
  {
    HttpFrontDoorConfig door_config;
    door_config.admission.per_tenant_capacity = 1 << 12;
    Loopback loop(door_config);
    bool all_ok = loop.ok;
    if (loop.ok) {
      std::vector<HttpClient> clients;
      for (int t = 0; t < 4 && all_ok; ++t) {
        auto client_or = HttpClient::Connect("127.0.0.1", loop.door.port());
        all_ok = client_or.ok();
        if (all_ok) clients.push_back(std::move(client_or).value());
      }
      if (all_ok) {
        sgnn::common::Rng rng(11);
        const Zipf tenant_pick(4, 1.1);
        const Zipf nodes(kNodes, 1.1);
        std::vector<int> outstanding(4);
        for (int i = 0; i < 400; ++i) {
          const size_t t = tenant_pick.Sample(rng);
          all_ok = all_ok &&
                   clients[t]
                       .SendRequest(
                           "POST", "/v1/infer",
                           InferBody(static_cast<NodeId>(nodes.Sample(rng)),
                                     TenantName(t)),
                           "application/json")
                       .ok();
          ++outstanding[t];
        }
        for (size_t t = 0; t < clients.size(); ++t) {
          for (int i = 0; i < outstanding[t]; ++i) {
            auto response = clients[t].ReadResponse();
            all_ok = all_ok && response.ok() &&
                     response.value().status_code == 200;
          }
        }
      }
    }
    check("net.zipf_burst_all_200", all_ok);
  }

  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
