// E19: cost of the sgnn::analysis invariant suite — per-validator scan
// throughput and the end-to-end overhead of running a pipeline with
// `validate_stages` on (the number EXPERIMENTS.md quotes).
#include <benchmark/benchmark.h>

#include "analysis/validate.h"
#include "bench_util.h"
#include "common/check.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "models/gcn.h"

namespace sgnn {
namespace {

core::Dataset Dataset(int64_t num_nodes) {
  return bench::MakeBenchDataset(static_cast<graph::NodeId>(num_nodes), 4,
                                 12.0, 0.8, 17);
}

void BM_ValidateCsr(benchmark::State& state) {
  core::Dataset d = Dataset(state.range(0));
  for (auto _ : state) {
    common::Status s = analysis::Validate(d.graph);
    SGNN_CHECK(s.ok());
    benchmark::DoNotOptimize(s);
  }
  state.counters["edges"] =
      benchmark::Counter(static_cast<double>(d.graph.num_edges()),
                         benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ValidateCsr)->Arg(10000)->Arg(100000);

void BM_ValidateFeatures(benchmark::State& state) {
  core::Dataset d = Dataset(state.range(0));
  for (auto _ : state) {
    common::Status s = analysis::ValidateFeatures(d.features);
    SGNN_CHECK(s.ok());
    benchmark::DoNotOptimize(s);
  }
  state.counters["floats"] =
      benchmark::Counter(static_cast<double>(d.features.size()),
                         benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_ValidateFeatures)->Arg(10000)->Arg(100000);

void BM_ValidateDataset(benchmark::State& state) {
  core::Dataset d = Dataset(state.range(0));
  for (auto _ : state) {
    common::Status s = analysis::Validate(d);
    SGNN_CHECK(s.ok());
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_ValidateDataset)->Arg(10000)->Arg(100000);

/// Full pipeline (sparsify + PPR smoothing + GCN), plain vs validated;
/// the delta between the two variants is the debug-mode overhead.
void RunPipeline(benchmark::State& state, bool validate) {
  core::Dataset d = Dataset(state.range(0));
  nn::TrainConfig config = bench::BenchTrainConfig();
  config.epochs = 5;  // Preprocessing-dominated: validation cost is visible.
  for (auto _ : state) {
    core::Pipeline pipeline;
    pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
        .AddAnalytics(core::MakePprSmoothingStage(0.15, 2))
        .SetModel("gcn", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                            std::span<const int> labels,
                            const models::NodeSplits& splits,
                            const nn::TrainConfig& c) {
          return models::TrainGcn(g, x, labels, splits, c);
        });
    core::RunContext ctx;
    ctx.validate_stages = validate;
    core::PipelineReport report = pipeline.Run(d, config, ctx);
    SGNN_CHECK(report.status.ok());
    benchmark::DoNotOptimize(report);
  }
}

void BM_PipelinePlain(benchmark::State& state) { RunPipeline(state, false); }
void BM_PipelineValidated(benchmark::State& state) {
  RunPipeline(state, true);
}
BENCHMARK(BM_PipelinePlain)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineValidated)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sgnn

BENCHMARK_MAIN();
