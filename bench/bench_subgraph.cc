// E11 — Subgraph extraction & storage (§3.3.3, SUREL/GENTI/G3): walk-set
// storage with deduplicated node pools is several times smaller than
// dense per-walk storage, and extraction latency stays flat per seed,
// while k-hop materialisation blows up with the hop count on skewed
// graphs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "subgraph/khop.h"
#include "subgraph/walk_store.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;

const CsrGraph& Graph() {
  static const CsrGraph& g =
      *new CsrGraph(sgnn::graph::BarabasiAlbert(50000, 5, 33));
  return g;
}

void BM_KHopExtraction(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  int64_t nodes = 0;
  for (auto _ : state) {
    for (NodeId seed = 0; seed < 32; ++seed) {
      auto ego = sgnn::subgraph::ExtractKHop(Graph(), seed * 811, hops, 0);
      nodes += static_cast<int64_t>(ego.nodes.size());
      benchmark::DoNotOptimize(ego);
    }
  }
  state.counters["avg_nodes_per_ego"] =
      static_cast<double>(nodes) /
      (32.0 * static_cast<double>(state.iterations()));
}
BENCHMARK(BM_KHopExtraction)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_WalkExtraction(benchmark::State& state) {
  // SUREL's saving has two parts: (a) the structural index itself
  // (16-bit local ids vs 32-bit node ids), and (b) — the dominant one —
  // feature/embedding storage, which is paid once per *distinct* node in
  // the pool instead of once per walk slot. `feature_dedup` is the
  // walk-slot/pool ratio, i.e. the factor saved on any per-node payload;
  // it grows with walks per seed as the pool saturates.
  const int walks = static_cast<int>(state.range(0));
  sgnn::common::Rng rng(1);
  for (auto _ : state) {
    sgnn::subgraph::WalkStore store;
    for (NodeId seed = 0; seed < 32; ++seed) {
      store.AddSeed(Graph(), seed * 811, walks, 4, &rng);
    }
    auto stats = store.Stats();
    state.counters["structure_bytes"] =
        static_cast<double>(stats.stored_bytes());
    state.counters["dense_bytes"] = static_cast<double>(stats.dense_bytes());
    state.counters["feature_dedup"] =
        static_cast<double>(stats.dense_slots) /
        static_cast<double>(stats.pool_entries);
    benchmark::DoNotOptimize(store);
  }
}
BENCHMARK(BM_WalkExtraction)
    ->Arg(20)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_WalkReconstruction(benchmark::State& state) {
  // Query-side latency: rebuilding walks from the compact pool.
  sgnn::common::Rng rng(1);
  sgnn::subgraph::WalkStore store;
  for (NodeId seed = 0; seed < 64; ++seed) {
    store.AddSeed(Graph(), (seed * 811) % Graph().num_nodes(), 50, 8, &rng);
  }
  int64_t total = 0;
  for (auto _ : state) {
    for (int b = 0; b < store.num_seeds(); ++b) {
      for (int w = 0; w < store.NumWalks(b); ++w) {
        total += static_cast<int64_t>(store.Walk(b, w).size());
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 64 * 50);
}
BENCHMARK(BM_WalkReconstruction)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
