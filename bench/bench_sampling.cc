// E5 — Sampling strategies (§3.3.2): per-batch cost of node-, layer- and
// subgraph-level sampling; LABOR materialises fewer distinct vertices
// than node-wise at matched per-edge inclusion; layer-wise caps width but
// carries higher variance at small widths.
// Series: sampled edges / distinct inputs / estimator MSE per strategy.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/subgraph_sampler.h"
#include "sampling/variance.h"

namespace {

using sgnn::core::Dataset;
using sgnn::graph::NodeId;
using sgnn::sampling::MiniBatch;

const Dataset& Data() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(20000, 4, 20.0, 0.85, 9));
  return d;
}

std::vector<NodeId> Seeds(size_t count) {
  return {Data().splits.train.begin(),
          Data().splits.train.begin() + static_cast<int64_t>(count)};
}

void ReportBatch(benchmark::State& state, const MiniBatch& batch) {
  state.counters["sampled_edges"] = static_cast<double>(batch.TotalEdges());
  state.counters["input_nodes"] =
      static_cast<double>(batch.input_nodes().size());
}

void BM_NodeWise(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto seeds = Seeds(128);
  std::vector<int> fanouts = {fanout, fanout};
  sgnn::common::Rng rng(1);
  MiniBatch batch;
  for (auto _ : state) {
    batch = sgnn::sampling::SampleNodeWise(Data().graph, seeds, fanouts, &rng);
    benchmark::DoNotOptimize(batch);
  }
  ReportBatch(state, batch);
}
BENCHMARK(BM_NodeWise)->Arg(5)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_Labor(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  auto seeds = Seeds(128);
  std::vector<int> fanouts = {fanout, fanout};
  sgnn::common::Rng rng(1);
  MiniBatch batch;
  for (auto _ : state) {
    batch = sgnn::sampling::SampleLabor(Data().graph, seeds, fanouts, &rng);
    benchmark::DoNotOptimize(batch);
  }
  ReportBatch(state, batch);
}
BENCHMARK(BM_Labor)->Arg(5)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_LayerWise(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto seeds = Seeds(128);
  std::vector<int> widths = {width, width};
  sgnn::common::Rng rng(1);
  MiniBatch batch;
  for (auto _ : state) {
    batch = sgnn::sampling::SampleLayerWise(Data().graph, seeds, widths, &rng);
    benchmark::DoNotOptimize(batch);
  }
  ReportBatch(state, batch);
}
BENCHMARK(BM_LayerWise)
    ->Arg(128)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void BM_SubgraphWalk(benchmark::State& state) {
  const int roots = static_cast<int>(state.range(0));
  sgnn::common::Rng rng(1);
  sgnn::sampling::SampledSubgraph sub;
  for (auto _ : state) {
    sub = sgnn::sampling::SampleSubgraphWalks(Data().graph, roots, 10, &rng);
    benchmark::DoNotOptimize(sub);
  }
  state.counters["nodes"] = static_cast<double>(sub.nodes.size());
  state.counters["edges"] = static_cast<double>(sub.subgraph.num_edges());
}
BENCHMARK(BM_SubgraphWalk)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_EstimatorError(benchmark::State& state) {
  // MSE + distinct sources per strategy at budget 10 (node/labor) or
  // width 512 (layer-wise), the variance story in one table.
  const auto kind = static_cast<sgnn::sampling::SamplerKind>(state.range(0));
  const int budget = kind == sgnn::sampling::SamplerKind::kLayerWise ? 512
                                                                     : 10;
  auto seeds = Seeds(64);
  sgnn::sampling::VarianceReport report;
  for (auto _ : state) {
    report = sgnn::sampling::MeasureSamplerVariance(
        Data().graph, Data().features, seeds, kind, budget, 30, 13);
    benchmark::DoNotOptimize(report);
  }
  state.counters["mse"] = report.mean_squared_error;
  state.counters["bias"] = report.mean_bias;
  state.counters["distinct_sources"] = report.avg_distinct_sources;
}
BENCHMARK(BM_EstimatorError)
    ->Arg(0)  // node-wise
    ->Arg(1)  // labor
    ->Arg(2)  // layer-wise
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
