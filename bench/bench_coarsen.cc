// E10 — Coarsening (§3.3.4, GDEM/ConvMatch/GC-SNTK): training on a
// contracted graph retains most accuracy down to small ratios while time
// and memory shrink with the coarse node count; spectral distortion grows
// as the ratio drops and tracks the accuracy loss; structural-equivalence
// merging is free.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "coarsen/coarsen.h"
#include "core/coarse_flow.h"
#include "models/gcn.h"

namespace {

using sgnn::core::Dataset;

const Dataset& Data() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(5000, 4, 14.0, 0.9, 29));
  return d;
}

void BM_DirectGcn(benchmark::State& state) {
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    result = sgnn::models::TrainGcn(Data().graph, Data().features,
                                    Data().labels, Data().splits,
                                    sgnn::bench::BenchTrainConfig());
  }
  state.counters["test_acc"] = result.report.test_accuracy;
  state.counters["train_nodes"] = static_cast<double>(Data().num_nodes());
}
BENCHMARK(BM_DirectGcn)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_CoarseTrainRatio(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0)) / 100.0;
  sgnn::core::CoarseTrainResult result;
  for (auto _ : state) {
    result = sgnn::core::TrainOnCoarseGraph(Data(), ratio,
                                            sgnn::bench::BenchTrainConfig());
  }
  state.counters["test_acc"] = result.model.report.test_accuracy;
  state.counters["train_nodes"] = static_cast<double>(result.coarse_nodes);
  state.counters["distortion"] = result.spectral_distortion;
}
BENCHMARK(BM_CoarseTrainRatio)
    ->Arg(50)->Arg(30)->Arg(10)->Arg(5)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_HeavyEdgeCoarsenOnly(benchmark::State& state) {
  const double ratio = static_cast<double>(state.range(0)) / 100.0;
  sgnn::coarsen::Coarsening c;
  for (auto _ : state) {
    c = sgnn::coarsen::HeavyEdgeCoarsen(Data().graph, ratio, 31);
    benchmark::DoNotOptimize(c);
  }
  state.counters["coarse_nodes"] = static_cast<double>(c.num_coarse());
  state.counters["coarse_edges"] =
      static_cast<double>(c.coarse.num_edges());
}
BENCHMARK(BM_HeavyEdgeCoarsenOnly)
    ->Arg(50)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_StructuralCoarsen(benchmark::State& state) {
  sgnn::coarsen::Coarsening c;
  for (auto _ : state) {
    c = sgnn::coarsen::StructuralCoarsen(Data().graph);
    benchmark::DoNotOptimize(c);
  }
  state.counters["coarse_nodes"] = static_cast<double>(c.num_coarse());
}
BENCHMARK(BM_StructuralCoarsen)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
