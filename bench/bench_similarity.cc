// E7 — Node-pair similarity (§3.2.2, SIMGA/DHIL-GT): top-k SimRank finds
// same-class nodes on heterophilous graphs far above the edge-homophily
// baseline, with decoupled per-query cost; hub-label SPD queries run
// orders of magnitude faster than per-query BFS after a one-time index
// build.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/metrics.h"
#include "similarity/hub_labeling.h"
#include "similarity/simrank.h"

namespace {

using sgnn::core::Dataset;
using sgnn::graph::NodeId;

const Dataset& HeterophilousData() {
  // Two classes at homophily 0.1: a near-bipartite structure where 2-hop
  // (SimRank-style) similarity is strongly same-class although edges are
  // almost all cross-class — the SIMGA setting.
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(3000, 2, 12.0, 0.1, 17));
  return d;
}

void BM_TopKSimRank(benchmark::State& state) {
  const Dataset& d = HeterophilousData();
  int same = 0, total = 0;
  for (auto _ : state) {
    for (NodeId source = 0; source < 8; ++source) {
      auto top = sgnn::similarity::TopKSimRank(d.graph, source * 101, 0.6, 5,
                                               2000, 12, 30, 7);
      for (const auto& [v, score] : top) {
        ++total;
        same += (d.labels[v] == d.labels[source * 101]);
      }
    }
  }
  state.counters["same_class_frac"] =
      static_cast<double>(same) / static_cast<double>(total);
  state.counters["edge_homophily"] =
      sgnn::graph::EdgeHomophily(d.graph, d.labels);
}
BENCHMARK(BM_TopKSimRank)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AllPairsSimRank(benchmark::State& state) {
  const NodeId n = static_cast<NodeId>(state.range(0));
  auto small = sgnn::bench::MakeBenchDataset(n, 4, 10.0, 0.2, 19);
  for (auto _ : state) {
    auto s = sgnn::similarity::AllPairsSimRank(small.graph, 0.6, 10);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_AllPairsSimRank)
    ->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond);

void BM_HubLabelBuild(benchmark::State& state) {
  const Dataset& d = HeterophilousData();
  int64_t entries = 0;
  for (auto _ : state) {
    sgnn::similarity::HubLabeling index(d.graph);
    entries = index.TotalLabelEntries();
    benchmark::DoNotOptimize(entries);
  }
  state.counters["label_entries"] = static_cast<double>(entries);
  state.counters["entries_per_node"] =
      static_cast<double>(entries) / d.num_nodes();
}
BENCHMARK(BM_HubLabelBuild)->Unit(benchmark::kMillisecond);

void BM_HubLabelQueries(benchmark::State& state) {
  const Dataset& d = HeterophilousData();
  static const sgnn::similarity::HubLabeling& index =
      *new sgnn::similarity::HubLabeling(d.graph);
  int64_t checksum = 0;
  for (auto _ : state) {
    for (int q = 0; q < 10000; ++q) {
      checksum += index.Query(
          static_cast<NodeId>(q % d.num_nodes()),
          static_cast<NodeId>((q * 7919) % d.num_nodes()));
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_HubLabelQueries)->Unit(benchmark::kMillisecond);

void BM_BfsQueries(benchmark::State& state) {
  // The no-index baseline: one BFS per source (already amortised over all
  // targets, i.e. the most favourable BFS accounting).
  const Dataset& d = HeterophilousData();
  int64_t checksum = 0;
  for (auto _ : state) {
    for (int q = 0; q < 100; ++q) {
      auto dist = sgnn::graph::BfsDistances(
          d.graph, static_cast<NodeId>(q % d.num_nodes()));
      checksum += dist[(q * 7919) % d.num_nodes()];
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BfsQueries)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
