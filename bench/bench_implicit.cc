// E8 — Graph algebras / implicit GNNs (§3.2.3, EIGNN/MGNNI): a single
// equilibrium solve sees the whole graph where K-hop propagation is
// blind past distance K; Neumann and Picard agree at the fixed point;
// larger scales (MGNNI) reach distant nodes in fewer iterations; solve
// cost grows with gamma (the effective depth dial).

#include <benchmark/benchmark.h>

#include "algebra/implicit.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "tensor/ops.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::Normalization;
using sgnn::graph::Propagator;
using sgnn::tensor::Matrix;

const CsrGraph& Graph() {
  static const CsrGraph& g = *new CsrGraph(
      sgnn::bench::MakeBenchDataset(20000, 4, 12.0, 0.85, 21).graph);
  return g;
}

Matrix Features() {
  sgnn::common::Rng rng(3);
  return Matrix::Gaussian(Graph().num_nodes(), 16, 0, 1, &rng);
}

void BM_NeumannSolve(benchmark::State& state) {
  const double gamma = static_cast<double>(state.range(0)) / 100.0;
  Propagator prop(Graph(), Normalization::kSymmetric, true);
  Matrix x = Features();
  sgnn::algebra::SolveStats stats;
  for (auto _ : state) {
    auto z = sgnn::algebra::NeumannSolve(prop, x, gamma, 1e-5, 2000, &stats);
    benchmark::DoNotOptimize(z);
  }
  state.counters["matvecs"] = stats.iterations;
  state.counters["converged"] = stats.converged ? 1 : 0;
}
BENCHMARK(BM_NeumannSolve)
    ->Arg(30)->Arg(60)->Arg(90)->Arg(97)
    ->Unit(benchmark::kMillisecond);

void BM_PicardSolve(benchmark::State& state) {
  const double gamma = static_cast<double>(state.range(0)) / 100.0;
  Propagator prop(Graph(), Normalization::kSymmetric, true);
  Matrix x = Features();
  sgnn::algebra::SolveStats stats;
  for (auto _ : state) {
    auto z = sgnn::algebra::PicardSolve(prop, x, gamma, 1e-5, 2000, &stats);
    benchmark::DoNotOptimize(z);
  }
  state.counters["matvecs"] = stats.iterations;
}
BENCHMARK(BM_PicardSolve)
    ->Arg(30)->Arg(60)->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_MultiscaleReach(benchmark::State& state) {
  // The MGNNI receptive-field claim: at a fixed truncation budget of 10
  // series terms, scale m advances 10*m hops, so mass reaches node 35 of
  // a chain only for m >= 4 — the larger scale widens the receptive
  // field without extra solver iterations.
  const int scale = static_cast<int>(state.range(0));
  const int n = 64;
  CsrGraph chain = sgnn::graph::Path(n);
  Propagator prop(chain, Normalization::kSymmetric, true);
  Matrix x(n, 1);
  x.at(0, 0) = 1.0f;
  double probe_mass = 0.0;
  for (auto _ : state) {
    auto z = sgnn::algebra::MultiscaleImplicit(prop, x, 0.9, {scale},
                                               /*tol=*/0.0, /*max_iters=*/10);
    probe_mass = z.at(35, 0);
    benchmark::DoNotOptimize(z);
  }
  state.counters["mass_at_node35"] = probe_mass;
  state.counters["hops_reachable"] = 10.0 * scale;
}
BENCHMARK(BM_MultiscaleReach)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ReceptiveFieldChain(benchmark::State& state) {
  // Mass reaching the far end of a 60-node chain: equilibrium vs K-hop.
  const int n = 60;
  CsrGraph chain = sgnn::graph::Path(n);
  Propagator prop(chain, Normalization::kSymmetric, true);
  Matrix x(n, 1);
  x.at(0, 0) = 1.0f;
  double implicit_far = 0.0, k5_far = 0.0;
  for (auto _ : state) {
    auto z = sgnn::algebra::NeumannSolve(prop, x, 0.95, 1e-12, 10000);
    auto k5 = sgnn::graph::PropagateKHops(prop, x, 5);
    implicit_far = z.at(n - 1, 0);
    k5_far = k5.at(n - 1, 0);
    benchmark::DoNotOptimize(implicit_far);
  }
  state.counters["implicit_far_mass"] = implicit_far;
  state.counters["k5_far_mass"] = k5_far;
}
BENCHMARK(BM_ReceptiveFieldChain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
