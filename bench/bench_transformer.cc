// E16 — Scalable graph Transformer (§3.4.1 + DHIL-GT): anchor attention
// keeps cost O(n * anchors); the hub-label SPD bias + encodings carry the
// topology, so accuracy survives feature noise that defeats the
// structure-free Transformer; preprocessing (index build + bias table) is
// a one-time cost that grows mildly with the anchor count.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "models/graph_transformer.h"

namespace {

using sgnn::core::Dataset;

Dataset NoisyData(double noise) {
  sgnn::core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 2000, .num_classes = 4, .avg_degree = 12,
                .homophily = 0.9};
  config.feature_dim = 16;
  config.feature_noise = noise;
  return sgnn::core::MakeSbmDataset(config, 53);
}

sgnn::nn::TrainConfig Config() {
  auto config = sgnn::bench::BenchTrainConfig();
  config.epochs = 60;
  config.patience = 20;
  config.lr = 0.01;
  return config;
}

void BM_StructuredVsPlain(benchmark::State& state) {
  // Arg: feature noise x10; counters report both variants' accuracy.
  const double noise = static_cast<double>(state.range(0)) / 10.0;
  Dataset d = NoisyData(noise);
  double structured = 0.0, plain = 0.0;
  for (auto _ : state) {
    structured = sgnn::models::TrainGraphTransformer(
                     d.graph, d.features, d.labels, d.splits, Config())
                     .report.test_accuracy;
    sgnn::models::GraphTransformerConfig no_structure;
    no_structure.spd_beta = 0.0;
    no_structure.spd_encoding_dim = 0;
    plain = sgnn::models::TrainGraphTransformer(d.graph, d.features,
                                                d.labels, d.splits, Config(),
                                                no_structure)
                .report.test_accuracy;
  }
  state.counters["acc_structured"] = structured;
  state.counters["acc_plain"] = plain;
}
BENCHMARK(BM_StructuredVsPlain)
    ->Arg(5)->Arg(15)->Arg(30)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_AnchorCountSweep(benchmark::State& state) {
  const int anchors = static_cast<int>(state.range(0));
  Dataset d = NoisyData(1.0);
  double acc = 0.0;
  for (auto _ : state) {
    sgnn::models::GraphTransformerConfig gt;
    gt.num_anchors = anchors;
    acc = sgnn::models::TrainGraphTransformer(d.graph, d.features, d.labels,
                                              d.splits, Config(), gt)
              .report.test_accuracy;
  }
  state.counters["test_acc"] = acc;
  state.counters["anchors"] = anchors;
}
BENCHMARK(BM_AnchorCountSweep)
    ->Arg(8)->Arg(32)->Arg(128)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
