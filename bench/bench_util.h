#ifndef SGNN_BENCH_BENCH_UTIL_H_
#define SGNN_BENCH_BENCH_UTIL_H_

#include <cstdint>

#include "core/dataset.h"
#include "nn/trainer.h"

namespace sgnn::bench {

/// Standard benchmark dataset: homophilous SBM with prototype features.
inline core::Dataset MakeBenchDataset(graph::NodeId num_nodes,
                                      int num_classes, double avg_degree,
                                      double homophily, uint64_t seed) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = num_nodes, .num_classes = num_classes,
                .avg_degree = avg_degree, .homophily = homophily};
  config.feature_dim = 16;
  config.feature_noise = 0.6;
  return core::MakeSbmDataset(config, seed);
}

/// Training budget used across benches (small enough to keep the whole
/// suite in minutes, large enough that accuracy differences are real).
inline nn::TrainConfig BenchTrainConfig() {
  nn::TrainConfig config;
  config.epochs = 40;
  config.hidden_dim = 32;
  config.patience = 15;
  config.lr = 0.02;
  return config;
}

}  // namespace sgnn::bench

#endif  // SGNN_BENCH_BENCH_UTIL_H_
