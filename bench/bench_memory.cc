// E13 — Limited memory (§3.1.3): full-batch GCN's resident activations
// grow linearly with the graph while mini-batch methods (Cluster-GCN,
// GraphSAGE) keep a near-constant working set — the "GPU memory wall"
// argument rendered in hardware-independent counters. Series: peak
// resident scalars vs graph size per method.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "models/cluster_gcn.h"
#include "models/gcn.h"
#include "models/sage.h"

namespace {

using sgnn::core::Dataset;

Dataset DataOfSize(int n) {
  return sgnn::bench::MakeBenchDataset(static_cast<sgnn::graph::NodeId>(n),
                                       4, 12.0, 0.85, 41);
}

sgnn::nn::TrainConfig ShortConfig() {
  auto config = sgnn::bench::BenchTrainConfig();
  config.epochs = 3;
  config.patience = 3;
  config.batch_size = 128;
  return config;
}

void BM_FullBatchGcnMemory(benchmark::State& state) {
  Dataset d = DataOfSize(static_cast<int>(state.range(0)));
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    sgnn::common::GlobalCounters().Reset();
    result = sgnn::models::TrainGcn(d.graph, d.features, d.labels, d.splits,
                                    ShortConfig());
  }
  state.counters["peak_resident"] =
      static_cast<double>(result.ops.peak_resident_floats);
  state.counters["nodes"] = static_cast<double>(d.num_nodes());
}
BENCHMARK(BM_FullBatchGcnMemory)
    ->Arg(2000)->Arg(8000)->Arg(32000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ClusterGcnMemory(benchmark::State& state) {
  Dataset d = DataOfSize(static_cast<int>(state.range(0)));
  // Parts scale with the graph so batch size stays roughly constant.
  const int parts = static_cast<int>(d.num_nodes()) / 1000;
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    sgnn::common::GlobalCounters().Reset();
    result = sgnn::models::TrainClusterGcn(
        d.graph, d.features, d.labels, d.splits, ShortConfig(),
        sgnn::models::ClusterGcnConfig{.num_parts = parts,
                                       .parts_per_batch = 1});
  }
  state.counters["peak_resident"] =
      static_cast<double>(result.ops.peak_resident_floats);
  state.counters["nodes"] = static_cast<double>(d.num_nodes());
}
BENCHMARK(BM_ClusterGcnMemory)
    ->Arg(2000)->Arg(8000)->Arg(32000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SageMemory(benchmark::State& state) {
  Dataset d = DataOfSize(static_cast<int>(state.range(0)));
  sgnn::models::ModelResult result;
  for (auto _ : state) {
    sgnn::common::GlobalCounters().Reset();
    result = sgnn::models::TrainSage(
        d.graph, d.features, d.labels, d.splits, ShortConfig(),
        sgnn::models::SageConfig{.fanouts = {10, 10}});
  }
  state.counters["peak_resident"] =
      static_cast<double>(result.ops.peak_resident_floats);
  state.counters["nodes"] = static_cast<double>(d.num_nodes());
}
BENCHMARK(BM_SageMemory)
    ->Arg(2000)->Arg(8000)->Arg(32000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
