// E21 — Deterministic parallel kernel substrate (sgnn::par): wall-clock
// scaling of the converted hot kernels (SpMM propagation, blocked GEMM,
// batch PPR push, sampling fan-out, and an end-to-end K-hop propagation)
// across worker counts on a ~10^6-edge graph. The paper's data-management
// claim is that these kernels are memory-bound row-parallel scans, so
// multi-threading should give near-linear end-to-end speedup on multi-core
// hosts without changing a single output bit; EXPERIMENTS.md records the
// measured ratios next to that claim.
//
// `bench_parallel --smoke` runs a seconds-scale correctness pass instead
// (byte-identity of every kernel at 1 vs 4 workers) for CI, and
// `bench_parallel --json[=path]` writes a machine-readable scaling sweep
// (seconds, edges/s, bytes/edge per worker count) to `path`, default
// BENCH_parallel.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "par/par.h"
#include "ppr/ppr.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;
namespace par = sgnn::par;
namespace tensor = sgnn::tensor;

constexpr int kFeatureDim = 32;

/// ~10^6-edge scale-free graph shared by every benchmark in the binary.
const CsrGraph& BigGraph() {
  static CsrGraph* graph = new CsrGraph(sgnn::graph::Rmat(
      NodeId(1) << 17, int64_t(1) << 20, sgnn::graph::RmatConfig{}, 7));
  return *graph;
}

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  sgnn::common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

void BM_SpmmPropagation(benchmark::State& state) {
  par::SetThreads(static_cast<int>(state.range(0)));
  const CsrGraph& g = BigGraph();
  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               /*add_self_loops=*/true);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), kFeatureDim, 1);
  tensor::Matrix out;
  for (auto _ : state) {
    prop.Apply(x, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  par::SetThreads(1);
}
BENCHMARK(BM_SpmmPropagation)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BlockedGemm(benchmark::State& state) {
  par::SetThreads(static_cast<int>(state.range(0)));
  const tensor::Matrix a = RandomMatrix(4096, 256, 2);
  const tensor::Matrix b = RandomMatrix(256, 256, 3);
  tensor::Matrix out;
  for (auto _ : state) {
    tensor::Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows() * a.cols() *
                          b.cols());
  par::SetThreads(1);
}
BENCHMARK(BM_BlockedGemm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_PprPushBatch(benchmark::State& state) {
  par::SetThreads(static_cast<int>(state.range(0)));
  const CsrGraph& g = BigGraph();
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 64; ++s) {
    seeds.push_back((s * 2654435761u) % g.num_nodes());
  }
  for (auto _ : state) {
    auto results = sgnn::ppr::PushBatch(g, seeds, 0.15, 1e-4);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seeds.size()));
  par::SetThreads(1);
}
BENCHMARK(BM_PprPushBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SampleFanOut(benchmark::State& state) {
  par::SetThreads(static_cast<int>(state.range(0)));
  const CsrGraph& g = BigGraph();
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 1024; ++s) {
    seeds.push_back((s * 40503u) % g.num_nodes());
  }
  const std::vector<int> fanouts = {10, 10};
  sgnn::common::Rng rng(9);
  for (auto _ : state) {
    auto batch = sgnn::sampling::SampleNodeWise(g, seeds, fanouts, &rng);
    benchmark::DoNotOptimize(batch.layers.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seeds.size()));
  par::SetThreads(1);
}
BENCHMARK(BM_SampleFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_EndToEndKHop(benchmark::State& state) {
  par::SetThreads(static_cast<int>(state.range(0)));
  const CsrGraph& g = BigGraph();
  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               /*add_self_loops=*/true);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), kFeatureDim, 4);
  const tensor::Matrix w = RandomMatrix(kFeatureDim, kFeatureDim, 5);
  for (auto _ : state) {
    // Two decoupled-GNN layers: propagate, transform, ReLU — the shape of
    // the SGC/S^2GC precompute path the tutorial's E12 measures end to end.
    tensor::Matrix h = sgnn::graph::PropagateKHops(prop, x, 2);
    tensor::Matrix z;
    tensor::Gemm(h, w, &z);
    tensor::Relu(&z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 2);
  par::SetThreads(1);
}
BENCHMARK(BM_EndToEndKHop)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- smoke

bool BytesEqual(const tensor::Matrix& a, const tensor::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

/// Seconds-scale CI pass: every converted kernel must be byte-identical at
/// 1 and 4 workers on a small graph. Returns 0 on success.
int RunSmoke() {
  const CsrGraph g = sgnn::graph::Rmat(NodeId(1) << 12, int64_t(1) << 15,
                                       sgnn::graph::RmatConfig{}, 7);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), 8, 1);
  int failures = 0;
  auto check = [&failures](const char* name, bool ok) {
    std::printf("%-24s %s\n", name, ok ? "OK" : "MISMATCH");
    if (!ok) ++failures;
  };

  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               true);
  tensor::Matrix p1, p4;
  par::SetThreads(1);
  prop.Apply(x, &p1);
  par::SetThreads(4);
  prop.Apply(x, &p4);
  check("propagate.apply", BytesEqual(p1, p4));

  const tensor::Matrix a = RandomMatrix(200, 64, 2);
  const tensor::Matrix b = RandomMatrix(64, 48, 3);
  tensor::Matrix g1, g4;
  par::SetThreads(1);
  tensor::Gemm(a, b, &g1);
  par::SetThreads(4);
  tensor::Gemm(a, b, &g4);
  check("tensor.gemm", BytesEqual(g1, g4));

  std::vector<NodeId> seeds = {1, 5, 9, 13, 21, 34};
  par::SetThreads(1);
  const auto push1 = sgnn::ppr::PushBatch(g, seeds, 0.15, 1e-3);
  par::SetThreads(4);
  const auto push4 = sgnn::ppr::PushBatch(g, seeds, 0.15, 1e-3);
  bool push_ok = push1.size() == push4.size();
  for (size_t i = 0; push_ok && i < push1.size(); ++i) {
    push_ok = push1[i].estimate == push4[i].estimate;
  }
  check("ppr.push_batch", push_ok);

  const std::vector<int> fanouts = {5, 3};
  par::SetThreads(1);
  sgnn::common::Rng rng1(11);
  const auto batch1 = sgnn::sampling::SampleNodeWise(g, seeds, fanouts, &rng1);
  par::SetThreads(4);
  sgnn::common::Rng rng4(11);
  const auto batch4 = sgnn::sampling::SampleNodeWise(g, seeds, fanouts, &rng4);
  bool sample_ok = batch1.layers.size() == batch4.layers.size();
  for (size_t l = 0; sample_ok && l < batch1.layers.size(); ++l) {
    sample_ok = batch1.layers[l].src == batch4.layers[l].src &&
                batch1.layers[l].src_local == batch4.layers[l].src_local;
  }
  check("sample.node_wise", sample_ok);

  par::SetThreads(1);
  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

// --------------------------------------------------------------------- json

/// Best-of-3 wall time of `fn` (after one warmup run), in seconds.
template <typename Fn>
double TimeBest(Fn&& fn) {
  fn();
  double best = 0.0;
  for (int r = 0; r < 3; ++r) {
    sgnn::common::WallTimer timer;
    fn();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Machine-readable scaling sweep over worker counts for the two hot
/// kernels the json consumers track (SpMM propagation and blocked GEMM),
/// with the exact OpCounters byte bill alongside (bytes/edge is worker-
/// count invariant by the billing contract, so it appears once per kernel
/// shape, not per worker count).
int RunJson(const std::string& path) {
  const CsrGraph& g = BigGraph();
  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               /*add_self_loops=*/true);
  const tensor::Matrix x = RandomMatrix(g.num_nodes(), kFeatureDim, 1);
  const tensor::Matrix a = RandomMatrix(4096, 256, 2);
  const tensor::Matrix b = RandomMatrix(256, 256, 3);
  tensor::Matrix out;

  std::string json = "{\n  \"experiment\": \"E21\",\n  \"results\": [\n";
  char buf[384];
  bool first = true;
  for (const int threads : {1, 2, 4, 8}) {
    par::SetThreads(threads);

    const double spmm_s = TimeBest([&] { prop.Apply(x, &out); });
    sgnn::common::ScopedCounterDelta spmm_scope;
    prop.Apply(x, &out);
    const auto spmm_delta = spmm_scope.Delta();
    const double spmm_bpe =
        static_cast<double>(spmm_delta.bytes_read +
                            spmm_delta.bytes_written) /
        static_cast<double>(g.num_edges());
    std::snprintf(
        buf, sizeof(buf),
        "%s    {\"name\": \"spmm\", \"threads\": %d, \"seconds\": %.6e, "
        "\"edges_per_s\": %.3e, \"bytes_per_edge\": %.1f}",
        first ? "" : ",\n", threads,
        spmm_s, static_cast<double>(g.num_edges()) / spmm_s, spmm_bpe);
    json += buf;
    first = false;

    const double gemm_s = TimeBest([&] { tensor::Gemm(a, b, &out); });
    const double gemm_flops =
        2.0 * static_cast<double>(a.rows()) * a.cols() * b.cols();
    std::snprintf(
        buf, sizeof(buf),
        ",\n    {\"name\": \"gemm\", \"threads\": %d, \"seconds\": %.6e, "
        "\"gflops\": %.3f}",
        threads, gemm_s, gemm_flops / gemm_s / 1e9);
    json += buf;
    std::printf("threads=%d spmm %.3fms (%.1f bytes/edge)  gemm %.3fms\n",
                threads, spmm_s * 1e3, spmm_bpe, gemm_s * 1e3);
  }
  par::SetThreads(1);
  json += "\n  ]\n}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  file << json;
  file.close();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") return RunSmoke();
    if (arg == "--json") return RunJson("BENCH_parallel.json");
    if (arg.rfind("--json=", 0) == 0) return RunJson(arg.substr(7));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
