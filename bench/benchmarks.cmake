# One google-benchmark binary per experiment in DESIGN.md's index
# (E1..E25). Included from the top-level CMakeLists so that build/bench/
# contains ONLY the benchmark binaries (the canonical run command is
# `for b in build/bench/*; do $b; done`). Extra arguments are additional
# libraries to link beyond sgnn_core.
function(sgnn_add_bench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE sgnn_core ${ARGN}
                        benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

sgnn_add_bench(bench_taxonomy)    # E1
sgnn_add_bench(bench_explosion)   # E2
sgnn_add_bench(bench_ppr)         # E3
sgnn_add_bench(bench_partition)   # E4
sgnn_add_bench(bench_sampling)    # E5
sgnn_add_bench(bench_spectral)    # E6
sgnn_add_bench(bench_similarity)  # E7
sgnn_add_bench(bench_implicit)    # E8
sgnn_add_bench(bench_sparsify)    # E9
sgnn_add_bench(bench_coarsen)     # E10
sgnn_add_bench(bench_subgraph)    # E11
sgnn_add_bench(bench_end2end)     # E12
sgnn_add_bench(bench_memory)      # E13
sgnn_add_bench(bench_ablation)   # E14
sgnn_add_bench(bench_distributed) # E15
sgnn_add_bench(bench_transformer) # E16
sgnn_add_bench(bench_serve sgnn_serve) # E17
sgnn_add_bench(bench_fault sgnn_serve) # E18
sgnn_add_bench(bench_analysis)    # E19
sgnn_add_bench(bench_obs sgnn_serve sgnn_models) # E20
sgnn_add_bench(bench_parallel)    # E21
sgnn_add_bench(bench_storage sgnn_storage) # E22
sgnn_add_bench(bench_dist sgnn_dist)       # E23
sgnn_add_bench(bench_net sgnn_net sgnn_nn) # E24
sgnn_add_bench(bench_kernels)     # E25
