// E23 — Crash-tolerant distributed execution (sgnn::dist): wall time of
// real multi-process partition-parallel propagation across worker counts,
// the measured halo wire bytes next to E15's *simulated* communication
// volume on the same partition (the simulator's honesty check), and the
// cost of surviving an injected mid-epoch worker kill — measured recovery
// overhead next to the Young-approximation prediction E15's checkpoint
// planner makes from the same failure rate.
//
// `bench_dist --smoke` runs a seconds-scale correctness pass instead for
// CI: bit-identity against the single-process Propagator at worker counts
// {1, 2, 4}, bit-identity again under a seeded kill schedule, and the
// measured halo bytes within 10% of the simulated volume.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "core/distributed_sim.h"
#include "core/run_context.h"
#include "dist/coordinator.h"
#include "dist/frame.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "partition/partition.h"
#include "tensor/matrix.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;
using sgnn::partition::Partition;
using sgnn::tensor::Matrix;
namespace core = sgnn::core;
namespace dist = sgnn::dist;

constexpr int kFeatureDim = 32;
constexpr int kHops = 2;

/// Scale-free graph shared by every benchmark in the binary.
const CsrGraph& BigGraph() {
  static CsrGraph* graph = new CsrGraph(sgnn::graph::Rmat(
      NodeId(1) << 14, int64_t(1) << 17, sgnn::graph::RmatConfig{}, 7));
  return *graph;
}

const Partition& PartitionFor(int k) {
  static std::map<int, Partition>* cache = new std::map<int, Partition>();
  auto it = cache->find(k);
  if (it == cache->end()) {
    it = cache->emplace(k, sgnn::partition::LdgPartition(BigGraph(), k, 1.05,
                                                         31)).first;
  }
  return it->second;
}

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  sgnn::common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

int64_t SimulatedHaloValues(const Partition& parts, int64_t dim) {
  const auto sim = core::SimulateDistributedEpoch(
      BigGraph(), parts, dim, core::DistributedCostModel{});
  int64_t values = 0;
  for (const auto& w : sim.workers) values += w.halo_values;
  return values;
}

/// One full distributed run per iteration; the wire/respawn counters put
/// the measured halo bytes next to the simulated volume.
void BM_DistPropagate(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const Partition& parts = PartitionFor(k);
  const Matrix x = RandomMatrix(BigGraph().num_nodes(), kFeatureDim, 1);
  dist::DistOptions opts;
  opts.hops = kHops;
  sgnn::common::FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  dist::DistReport report;
  for (auto _ : state) {
    auto out_or =
        dist::RunDistributedPropagation(BigGraph(), parts, x, opts, ctx,
                                        &report);
    if (!out_or.ok()) {
      state.SkipWithError(out_or.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out_or.value().data());
  }
  const double sim_bytes = static_cast<double>(
      SimulatedHaloValues(parts, kFeatureDim) * sizeof(float) * kHops);
  state.counters["halo_MB"] =
      static_cast<double>(report.halo_bytes) / (1 << 20);
  state.counters["sim_halo_MB"] = sim_bytes / (1 << 20);
  state.counters["wire_overhead"] =
      sim_bytes > 0 ? static_cast<double>(report.halo_bytes) / sim_bytes : 0;
  state.SetItemsProcessed(state.iterations() * BigGraph().num_edges() * kHops);
}
BENCHMARK(BM_DistPropagate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// The robustness headline priced: same run, but worker 1 is killed
/// mid-epoch-1 every time and must be respawned and replayed. The delta
/// against BM_DistPropagate/4 is the measured crash-recovery overhead
/// that E15's Young-model checkpoint planner predicts analytically.
void BM_DistPropagateWithKill(benchmark::State& state) {
  const int k = 4;
  const Partition& parts = PartitionFor(k);
  const Matrix x = RandomMatrix(BigGraph().num_nodes(), kFeatureDim, 1);
  dist::DistOptions opts;
  opts.hops = kHops;
  sgnn::common::FaultInjector faults;
  faults.ArmAt(dist::kSiteWorkerKill,
               static_cast<int64_t>(dist::KillToken(1, 1, 0)));
  core::RunContext ctx;
  ctx.faults = &faults;
  dist::DistReport report;
  for (auto _ : state) {
    auto out_or =
        dist::RunDistributedPropagation(BigGraph(), parts, x, opts, ctx,
                                        &report);
    if (!out_or.ok()) {
      state.SkipWithError(out_or.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out_or.value().data());
  }
  state.counters["respawns_per_run"] = static_cast<double>(report.respawns);
  state.SetItemsProcessed(state.iterations() * BigGraph().num_edges() * kHops);
}
BENCHMARK(BM_DistPropagateWithKill)->Unit(benchmark::kMillisecond);

/// Per-epoch checkpointing priced against the same run without it; the
/// Young model turns this cost plus a failure rate into an optimal
/// checkpoint interval (printed by the smoke pass).
void BM_DistPropagateCheckpointed(benchmark::State& state) {
  const int k = 4;
  const Partition& parts = PartitionFor(k);
  const Matrix x = RandomMatrix(BigGraph().num_nodes(), kFeatureDim, 1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_bench_dist_ckpt.bin")
          .string();
  dist::DistOptions opts;
  opts.hops = kHops;
  opts.checkpoint_path = path;
  sgnn::common::FaultInjector no_faults;
  core::RunContext ctx;
  ctx.faults = &no_faults;
  ctx.resume = false;  // Always run all epochs; measure write cost only.
  for (auto _ : state) {
    auto out_or =
        dist::RunDistributedPropagation(BigGraph(), parts, x, opts, ctx);
    if (!out_or.ok()) {
      state.SkipWithError(out_or.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(out_or.value().data());
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations() * BigGraph().num_edges() * kHops);
}
BENCHMARK(BM_DistPropagateCheckpointed)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- smoke

bool BytesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

/// Seconds-scale CI pass. Returns 0 on success.
int RunSmoke() {
  const CsrGraph g = sgnn::graph::Rmat(NodeId(1) << 12, int64_t(1) << 15,
                                       sgnn::graph::RmatConfig{}, 7);
  const Matrix x = RandomMatrix(g.num_nodes(), 64, 1);
  dist::DistOptions opts;
  opts.hops = kHops;
  sgnn::graph::Propagator prop(g, opts.norm, opts.add_self_loops);
  const Matrix want = sgnn::graph::PropagateKHops(prop, x, opts.hops);

  int failures = 0;
  auto check = [&failures](const char* name, bool ok) {
    std::printf("%-28s %s\n", name, ok ? "OK" : "MISMATCH");
    if (!ok) ++failures;
  };

  for (const int k : {1, 2, 4}) {
    const Partition parts = sgnn::partition::LdgPartition(g, k, 1.05, 31);
    sgnn::common::FaultInjector no_faults;
    core::RunContext ctx;
    ctx.faults = &no_faults;
    dist::DistReport report;
    auto out_or =
        dist::RunDistributedPropagation(g, parts, x, opts, ctx, &report);
    char name[64];
    std::snprintf(name, sizeof(name), "dist.bit_identity.k%d", k);
    check(name, out_or.ok() && BytesEqual(want, out_or.value()));
    if (k == 4 && out_or.ok()) {
      // The acceptance bound: measured halo wire bytes within 10% of the
      // simulator's float volume on the same partition.
      const auto sim = core::SimulateDistributedEpoch(
          g, parts, x.cols(), core::DistributedCostModel{});
      int64_t sim_values = 0;
      for (const auto& w : sim.workers) sim_values += w.halo_values;
      const double sim_bytes =
          static_cast<double>(sim_values) * sizeof(float) * opts.hops;
      const double measured = static_cast<double>(report.halo_bytes);
      std::printf("halo bytes: measured=%.0f simulated=%.0f ratio=%.4f\n",
                  measured, sim_bytes, measured / sim_bytes);
      check("dist.wire_vs_simulated", measured >= sim_bytes &&
                                          measured <= 1.10 * sim_bytes);
    }
  }

  // Kill worker 1 mid-epoch-1: recovery must keep the bytes identical.
  {
    const Partition parts = sgnn::partition::LdgPartition(g, 4, 1.05, 31);
    sgnn::common::FaultInjector faults;
    faults.ArmAt(dist::kSiteWorkerKill,
                 static_cast<int64_t>(dist::KillToken(1, 1, 0)));
    core::RunContext ctx;
    ctx.faults = &faults;
    dist::DistReport report;
    auto out_or =
        dist::RunDistributedPropagation(g, parts, x, opts, ctx, &report);
    check("dist.bit_identity.killed", out_or.ok() &&
                                          BytesEqual(want, out_or.value()) &&
                                          report.respawns >= 1);

    // Put the measured recovery cost next to the closed-form model E15
    // plans with: one kill in `hops` epochs on k workers is a per-worker,
    // per-epoch failure probability of 1/(k*hops).
    core::FailureModel failure;
    failure.worker_failure_prob =
        1.0 / (4.0 * static_cast<double>(opts.hops));
    failure.checkpoint_write_seconds = 1e-3;
    failure.restart_seconds = 1e-3;
    const core::CheckpointPlan plan =
        core::PlanCheckpoints(/*epoch_seconds=*/1e-2, 4, failure);
    std::printf(
        "recovery: respawns=%d; Young plan: mtbf=%.3fs tau*=%.3fs "
        "overhead=%.3fx\n",
        report.respawns, plan.mtbf_seconds, plan.optimal_interval_seconds,
        plan.expected_overhead);
  }

  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
