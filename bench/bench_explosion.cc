// E2 — Neighbourhood explosion (§1, §3.1.3): the receptive field of
// message passing grows near-exponentially with depth on skewed graphs;
// fanout sampling caps the growth per level; decoupled propagation
// removes the dependence entirely (cost is K full sweeps, receptive
// field irrelevant to memory).
//
// Series reported per depth L:
//   full_nodes     — exact L-hop receptive field of a batch of 16 seeds,
//   sampled_nodes  — node-wise sampled input set at fanout 10,
//   labor_nodes    — LABOR sampled input set at fanout 10,
//   decoupled_edges — edges touched by L decoupled sweeps (batch-free).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/metrics.h"
#include "graph/propagate.h"
#include "sampling/neighbor_sampler.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;

const CsrGraph& Graph() {
  static const CsrGraph& g =
      *new CsrGraph(sgnn::graph::BarabasiAlbert(100000, 5, 3));
  return g;
}

std::vector<NodeId> Seeds() {
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < 16; ++u) seeds.push_back(u * 37 + 1);
  return seeds;
}

void BM_FullReceptiveField(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const auto seeds = Seeds();
  int64_t nodes = 0;
  for (auto _ : state) {
    auto batch = sgnn::sampling::FullNeighborhood(Graph(), seeds, hops);
    nodes = static_cast<int64_t>(batch.input_nodes().size());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["input_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_FullReceptiveField)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

void BM_SampledReceptiveField(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const auto seeds = Seeds();
  std::vector<int> fanouts(static_cast<size_t>(hops), 10);
  sgnn::common::Rng rng(1);
  int64_t nodes = 0;
  for (auto _ : state) {
    auto batch =
        sgnn::sampling::SampleNodeWise(Graph(), seeds, fanouts, &rng);
    nodes = static_cast<int64_t>(batch.input_nodes().size());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["input_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_SampledReceptiveField)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_LaborReceptiveField(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  const auto seeds = Seeds();
  std::vector<int> fanouts(static_cast<size_t>(hops), 10);
  sgnn::common::Rng rng(1);
  int64_t nodes = 0;
  for (auto _ : state) {
    auto batch = sgnn::sampling::SampleLabor(Graph(), seeds, fanouts, &rng);
    nodes = static_cast<int64_t>(batch.input_nodes().size());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["input_nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_LaborReceptiveField)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_DecoupledSweeps(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  sgnn::graph::Propagator prop(Graph(),
                               sgnn::graph::Normalization::kSymmetric, true);
  sgnn::common::Rng rng(2);
  sgnn::tensor::Matrix x =
      sgnn::tensor::Matrix::Gaussian(Graph().num_nodes(), 8, 0, 1, &rng);
  uint64_t edges = 0;
  for (auto _ : state) {
    sgnn::common::ScopedCounterDelta scope;
    auto z = sgnn::graph::PropagateKHops(prop, x, hops);
    benchmark::DoNotOptimize(z);
    edges = scope.Delta().edges_touched;
  }
  state.counters["edges_touched"] = static_cast<double>(edges);
}
BENCHMARK(BM_DecoupledSweeps)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
