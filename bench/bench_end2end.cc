// E12 — the "Table 1" analogue: the classic-scalable-GNN comparison every
// survey the tutorial cites tabulates. All seven zoo models train on one
// SBM; rows report accuracy, epochs, wall time, edges touched, scalars
// moved and peak resident working set. Expected shape: comparable
// accuracy; decoupled methods cheapest per epoch; sampled methods touch
// the most edges; partition/sampled methods bound the resident set.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "models/cluster_gcn.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "models/graph_transformer.h"
#include "models/sage.h"
#include "models/saint.h"

namespace {

using sgnn::core::Dataset;
using sgnn::models::ModelResult;

const Dataset& Data() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(20000, 5, 12.0, 0.85, 37));
  return d;
}

sgnn::nn::TrainConfig Config() {
  auto config = sgnn::bench::BenchTrainConfig();
  config.epochs = 15;
  config.patience = 10;
  config.batch_size = 256;
  return config;
}

void Report(benchmark::State& state, const ModelResult& result) {
  state.counters["test_acc"] = result.report.test_accuracy;
  state.counters["epochs"] = result.report.epochs_run;
  state.counters["edges_touched"] =
      static_cast<double>(result.ops.edges_touched);
  state.counters["floats_moved"] =
      static_cast<double>(result.ops.floats_moved);
  state.counters["peak_resident"] =
      static_cast<double>(result.ops.peak_resident_floats);
}

#define SGNN_E2E_BENCH(NAME, EXPR)                              \
  void BM_##NAME(benchmark::State& state) {                     \
    const Dataset& d = Data();                                  \
    ModelResult result;                                         \
    for (auto _ : state) {                                      \
      sgnn::common::GlobalCounters().Reset();                   \
      result = (EXPR);                                          \
    }                                                           \
    Report(state, result);                                      \
  }                                                             \
  BENCHMARK(BM_##NAME)->Iterations(1)->Unit(benchmark::kMillisecond)

SGNN_E2E_BENCH(Gcn, sgnn::models::TrainGcn(d.graph, d.features, d.labels,
                                           d.splits, Config()));
SGNN_E2E_BENCH(Sgc, sgnn::models::TrainSgc(d.graph, d.features, d.labels,
                                           d.splits, Config()));
SGNN_E2E_BENCH(Appnp, sgnn::models::TrainAppnp(d.graph, d.features, d.labels,
                                               d.splits, Config()));
SGNN_E2E_BENCH(Pprgo, sgnn::models::TrainPprgo(d.graph, d.features, d.labels,
                                               d.splits, Config()));
SGNN_E2E_BENCH(Sign, sgnn::models::TrainSign(d.graph, d.features, d.labels,
                                             d.splits, Config()));
SGNN_E2E_BENCH(SpectralDecoupled,
               sgnn::models::TrainSpectralDecoupled(
                   d.graph, d.features, d.labels, d.splits, Config()));
SGNN_E2E_BENCH(Implicit,
               sgnn::models::TrainImplicit(d.graph, d.features, d.labels,
                                           d.splits, Config()));
SGNN_E2E_BENCH(Sage, sgnn::models::TrainSage(
                         d.graph, d.features, d.labels, d.splits, Config(),
                         sgnn::models::SageConfig{.fanouts = {10, 10}}));
SGNN_E2E_BENCH(SageLabor,
               sgnn::models::TrainSage(
                   d.graph, d.features, d.labels, d.splits, Config(),
                   sgnn::models::SageConfig{.fanouts = {10, 10},
                                            .use_labor = true}));
SGNN_E2E_BENCH(ClusterGcn,
               sgnn::models::TrainClusterGcn(
                   d.graph, d.features, d.labels, d.splits, Config(),
                   sgnn::models::ClusterGcnConfig{.num_parts = 32,
                                                  .parts_per_batch = 2}));
SGNN_E2E_BENCH(Saint, sgnn::models::TrainSaint(d.graph, d.features, d.labels,
                                               d.splits, Config()));
SGNN_E2E_BENCH(LabelProp,
               sgnn::models::TrainLabelProp(d.graph, d.features, d.labels,
                                            d.splits, Config()));
SGNN_E2E_BENCH(GraphTransformer,
               sgnn::models::TrainGraphTransformer(
                   d.graph, d.features, d.labels, d.splits, Config()));

}  // namespace

BENCHMARK_MAIN();
