// E3 — Decoupled propagation via approximate PPR (§3.1.2, APPNP/SCARA):
// forward push touches far fewer edges than power iteration at loose
// precision and degrades gracefully as epsilon shrinks; Monte Carlo is
// cheapest but noisiest. Series across graph scales and r_max: edges
// touched, fraction of the theoretical error bound used, and recall of
// the exact top-50 PPR set (the ranking decoupled GNNs consume).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "common/counters.h"
#include "graph/generators.h"
#include "ppr/ppr.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;

constexpr double kAlpha = 0.15;

const CsrGraph& GraphOfScale(int scale) {
  static CsrGraph* graphs[32] = {};
  if (graphs[scale] == nullptr) {
    graphs[scale] = new CsrGraph(sgnn::graph::Rmat(
        NodeId(1) << scale, int64_t(1) << (scale + 3),
        sgnn::graph::RmatConfig{}, 7));
  }
  return *graphs[scale];
}

/// Fraction of the push guarantee actually used:
/// max_v |pi(v) - p(v)| / (r_max * max(1, deg(v))); must stay <= 1.
double BoundFraction(const CsrGraph& g, const std::vector<double>& exact,
                     const sgnn::ppr::PushResult& push, double r_max) {
  std::vector<double> approx(exact.size(), 0.0);
  for (const auto& [v, mass] : push.estimate) approx[v] = mass;
  double worst = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const double bound =
        r_max * std::max<double>(1.0, static_cast<double>(g.OutDegree(v)));
    worst = std::max(worst, std::fabs(exact[v] - approx[v]) / bound);
  }
  return worst;
}

/// Recall of the exact top-50 within the push estimate's top-50: the
/// ranking quality a decoupled GNN actually consumes.
double Top50Recall(const std::vector<double>& exact,
                   const sgnn::ppr::PushResult& push) {
  auto top_of = [](std::vector<std::pair<NodeId, double>> scored) {
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    if (scored.size() > 50) scored.resize(50);
    std::vector<NodeId> ids;
    for (const auto& [v, s] : scored) ids.push_back(v);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  std::vector<std::pair<NodeId, double>> exact_scored;
  for (NodeId v = 0; v < exact.size(); ++v) {
    if (exact[v] > 0) exact_scored.emplace_back(v, exact[v]);
  }
  const auto exact_top = top_of(std::move(exact_scored));
  const auto push_top = top_of(push.estimate);
  std::vector<NodeId> common;
  std::set_intersection(exact_top.begin(), exact_top.end(), push_top.begin(),
                        push_top.end(), std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(exact_top.size());
}

void BM_ForwardPush(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const double r_max = std::pow(10.0, -static_cast<double>(state.range(1)));
  const CsrGraph& g = GraphOfScale(scale);
  auto exact = sgnn::ppr::PowerIterationPpr(g, 0, kAlpha, 1e-12, 1000);
  sgnn::ppr::PushResult push;
  for (auto _ : state) {
    push = sgnn::ppr::ForwardPush(g, 0, kAlpha, r_max);
    benchmark::DoNotOptimize(push);
  }
  state.counters["edges_touched"] = static_cast<double>(push.edges_touched);
  state.counters["graph_edges"] = static_cast<double>(g.num_edges());
  state.counters["bound_frac"] = BoundFraction(g, exact, push, r_max);
  state.counters["top50_recall"] = Top50Recall(exact, push);
}
BENCHMARK(BM_ForwardPush)
    ->ArgsProduct({{14, 16, 18}, {4, 5, 6, 7}})
    ->Unit(benchmark::kMillisecond);

void BM_PowerIteration(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const CsrGraph& g = GraphOfScale(scale);
  uint64_t edges = 0;
  for (auto _ : state) {
    sgnn::common::ScopedCounterDelta scope;
    auto pi = sgnn::ppr::PowerIterationPpr(g, 0, kAlpha, 1e-9, 1000);
    benchmark::DoNotOptimize(pi);
    edges = scope.Delta().edges_touched;
  }
  state.counters["edges_touched"] = static_cast<double>(edges);
  state.counters["graph_edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_PowerIteration)
    ->Arg(14)
    ->Arg(16)
    ->Arg(18)
    ->Unit(benchmark::kMillisecond);

void BM_MonteCarlo(benchmark::State& state) {
  const int scale = 16;
  const int64_t walks = state.range(0);
  const CsrGraph& g = GraphOfScale(scale);
  auto exact = sgnn::ppr::PowerIterationPpr(g, 0, kAlpha, 1e-12, 1000);
  std::vector<double> mc;
  for (auto _ : state) {
    mc = sgnn::ppr::MonteCarloPpr(g, 0, kAlpha, walks, 11);
    benchmark::DoNotOptimize(mc);
  }
  double err = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) err += std::fabs(exact[i] - mc[i]);
  state.counters["l1_error"] = err;
  state.counters["walks"] = static_cast<double>(walks);
}
BENCHMARK(BM_MonteCarlo)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_TopKPpr(benchmark::State& state) {
  const CsrGraph& g = GraphOfScale(18);
  for (auto _ : state) {
    auto top = sgnn::ppr::TopKPpr(g, 0, kAlpha, 32, 1e-5);
    benchmark::DoNotOptimize(top);
  }
}
BENCHMARK(BM_TopKPpr)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
