// E25 — SIMD microkernels + cache-blocked CSR (sgnn::simd): single-core
// throughput of the converted hot kernels with the AVX2 backend against
// the bit-identical scalar fallback. The paper's scalability story prices
// everything in data movement; this experiment grounds the conversion
// factor by reporting, per kernel, the achieved GF/s and GB/s, and for
// SpMM the edges/s *and* bytes/edge (from the exact OpCounters byte bill),
// so the roofline each kernel sits on is visible next to its speedup.
//
// `bench_kernels --json[=path]` writes the machine-readable comparison to
// `path` (default BENCH_kernels.json) and prints a table; without flags
// the binary runs the usual google-benchmark suite (Arg(0) = scalar
// backend, Arg(1) = vector backend).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/rng.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "par/par.h"
#include "simd/simd.h"
#include "tensor/ops.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;
namespace par = sgnn::par;
namespace simd = sgnn::simd;
namespace tensor = sgnn::tensor;

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  sgnn::common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

/// ~10^5-node scale-free graph for the SpMM rows (big enough that the
/// gathered x rows fall out of L2 under skew, small enough for seconds-
/// scale runs).
const CsrGraph& SpmmGraph() {
  static CsrGraph* graph = new CsrGraph(sgnn::graph::Rmat(
      NodeId(1) << 15, int64_t(1) << 18, sgnn::graph::RmatConfig{}, 7));
  return *graph;
}

// ---------------------------------------------------- google-benchmark row

void SetBackend(int64_t arg) { simd::SetEnabled(arg != 0); }

void BM_KernelGemm(benchmark::State& state) {
  SetBackend(state.range(0));
  par::SetThreads(1);
  const tensor::Matrix a = RandomMatrix(512, 256, 2);
  const tensor::Matrix b = RandomMatrix(256, 256, 3);
  tensor::Matrix out;
  for (auto _ : state) {
    tensor::Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * a.rows() * a.cols() *
                          b.cols());
  simd::SetEnabled(true);
}
BENCHMARK(BM_KernelGemm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_KernelAxpy(benchmark::State& state) {
  SetBackend(state.range(0));
  par::SetThreads(1);
  const tensor::Matrix other = RandomMatrix(2048, 1024, 4);
  tensor::Matrix m = RandomMatrix(2048, 1024, 5);
  for (auto _ : state) {
    tensor::Axpy(0.5f, other, &m);
    benchmark::DoNotOptimize(m.data());
  }
  state.SetItemsProcessed(state.iterations() * m.size());
  simd::SetEnabled(true);
}
BENCHMARK(BM_KernelAxpy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_KernelSpmm(benchmark::State& state) {
  SetBackend(state.range(0));
  par::SetThreads(1);
  const CsrGraph& g = SpmmGraph();
  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               /*add_self_loops=*/true);
  const tensor::Matrix x =
      RandomMatrix(g.num_nodes(), state.range(1), 6);
  tensor::Matrix out;
  for (auto _ : state) {
    prop.Apply(x, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  simd::SetEnabled(true);
}
BENCHMARK(BM_KernelSpmm)
    ->Args({0, 32})->Args({1, 32})->Args({0, 256})->Args({1, 256})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- json driver

struct KernelResult {
  std::string name;
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  double flops = 0.0;        ///< Arithmetic ops per run (0 = not reported).
  uint64_t bytes = 0;        ///< Logical bytes per run (OpCounters bill).
  uint64_t edges = 0;        ///< Edges per run (SpMM rows only).

  double Speedup() const {
    return simd_seconds > 0.0 ? scalar_seconds / simd_seconds : 0.0;
  }
};

/// Best-of-N wall time of `fn` (after one warmup run), in seconds.
template <typename Fn>
double TimeBest(Fn&& fn, int reps = 5) {
  fn();
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    sgnn::common::WallTimer timer;
    fn();
    const double s = timer.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Times `fn` on both backends and captures the byte bill of one run.
template <typename Fn>
KernelResult Compare(const std::string& name, double flops, Fn&& fn) {
  KernelResult result;
  result.name = name;
  result.flops = flops;
  simd::SetEnabled(false);
  result.scalar_seconds = TimeBest(fn);
  simd::SetEnabled(true);
  result.simd_seconds = TimeBest(fn);
  sgnn::common::ScopedCounterDelta scope;
  fn();
  const sgnn::common::OpCounters delta = scope.Delta();
  result.bytes = delta.bytes_read + delta.bytes_written;
  result.edges = delta.edges_touched;
  return result;
}

int RunJson(const std::string& path) {
  par::SetThreads(1);
  std::vector<KernelResult> results;

  {
    const tensor::Matrix a = RandomMatrix(512, 256, 2);
    const tensor::Matrix b = RandomMatrix(256, 256, 3);
    tensor::Matrix out;
    results.push_back(Compare(
        "gemm_512x256x256", 2.0 * 512 * 256 * 256,
        [&] { tensor::Gemm(a, b, &out); }));
  }
  {
    const tensor::Matrix a = RandomMatrix(512, 256, 8);
    const tensor::Matrix bt = RandomMatrix(256, 256, 9);
    tensor::Matrix out;
    results.push_back(Compare(
        "gemm_tb_512x256x256", 2.0 * 512 * 256 * 256,
        [&] { tensor::GemmTransposeB(a, bt, &out); }));
  }
  {
    // Streaming sizes (8 MB per operand): these sit on the DRAM roofline,
    // so the honest expectation is bandwidth parity, not a lane-count
    // speedup — reported to make that roofline visible next to the
    // cache-resident rows below.
    const tensor::Matrix other = RandomMatrix(2048, 1024, 4);
    tensor::Matrix m = RandomMatrix(2048, 1024, 5);
    results.push_back(Compare(
        "axpy_2m", 2.0 * 2048 * 1024,
        [&] { tensor::Axpy(0.5f, other, &m); }));
    results.push_back(Compare(
        "scale_2m", 1.0 * 2048 * 1024,
        [&] { tensor::Scale(1.0009f, &m); }));
    results.push_back(Compare(
        "relu_2m", 1.0 * 2048 * 1024, [&] { tensor::Relu(&m); }));
  }
  {
    // Cache-resident sizes (128 KB per operand, the shape of a GNN layer's
    // row panel): compute-bound, so the lane count shows.
    const tensor::Matrix other = RandomMatrix(128, 256, 14);
    tensor::Matrix m = RandomMatrix(128, 256, 15);
    const int kInner = 64;  // Amortize the parallel-section dispatch.
    results.push_back(Compare(
        "axpy_32k_resident", 2.0 * 128 * 256 * kInner, [&] {
          for (int rep = 0; rep < kInner; ++rep) {
            tensor::Axpy(0.5f, other, &m);
          }
        }));
    results.push_back(Compare(
        "relu_32k_resident", 1.0 * 128 * 256 * kInner, [&] {
          for (int rep = 0; rep < kInner; ++rep) tensor::Relu(&m);
        }));
  }
  {
    tensor::Matrix m = RandomMatrix(8192, 256, 10);
    results.push_back(Compare(
        "softmax_rows_8192x256", 4.0 * 8192 * 256,
        [&] { tensor::SoftmaxRows(&m); }));
  }
  {
    const tensor::Matrix m = RandomMatrix(2048, 512, 11);
    tensor::Matrix out;
    results.push_back(Compare(
        "transpose_2048x512", 0.0, [&] { out = tensor::Transpose(m); }));
  }
  {
    const CsrGraph& g = SpmmGraph();
    sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                                 /*add_self_loops=*/true);
    for (const int64_t cols : {32, 256}) {
      const tensor::Matrix x = RandomMatrix(g.num_nodes(), cols, 6);
      tensor::Matrix out;
      results.push_back(Compare(
          "spmm_" + std::to_string(cols) + "c",
          2.0 * static_cast<double>(g.num_edges()) *
              static_cast<double>(cols),
          [&] { prop.Apply(x, &out); }));
    }
  }

  std::string json = "{\n  \"experiment\": \"E25\",\n  \"backend\": \"";
  json += simd::Supported() ? "avx2" : "scalar-only";
  json += "\",\n  \"results\": [\n";
  std::printf("%-22s %12s %12s %8s %9s %11s %10s\n", "kernel", "scalar_ms",
              "simd_ms", "speedup", "GF/s", "edges/s", "bytes/edge");
  char buf[512];
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    const double gflops =
        r.flops > 0.0 && r.simd_seconds > 0.0
            ? r.flops / r.simd_seconds / 1e9
            : 0.0;
    const double edges_per_s =
        r.edges > 0 && r.simd_seconds > 0.0
            ? static_cast<double>(r.edges) / r.simd_seconds
            : 0.0;
    const double bytes_per_edge =
        r.edges > 0 ? static_cast<double>(r.bytes) /
                          static_cast<double>(r.edges)
                    : 0.0;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"scalar_seconds\": %.6e, "
        "\"simd_seconds\": %.6e, \"speedup\": %.3f, \"gflops\": %.3f, "
        "\"bytes\": %llu, \"edges\": %llu, \"edges_per_s\": %.3e, "
        "\"bytes_per_edge\": %.1f}%s\n",
        r.name.c_str(), r.scalar_seconds, r.simd_seconds, r.Speedup(),
        gflops, static_cast<unsigned long long>(r.bytes),
        static_cast<unsigned long long>(r.edges), edges_per_s,
        bytes_per_edge, i + 1 < results.size() ? "," : "");
    json += buf;
    std::printf("%-22s %12.3f %12.3f %8.2f %9.2f %11.3e %10.1f\n",
                r.name.c_str(), r.scalar_seconds * 1e3,
                r.simd_seconds * 1e3, r.Speedup(), gflops, edges_per_s,
                bytes_per_edge);
  }
  json += "  ]\n}\n";

  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") return RunJson("BENCH_kernels.json");
    if (arg.rfind("--json=", 0) == 0) return RunJson(arg.substr(7));
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
