// E15 — Distributed training simulation (§3.4.3): partition quality
// translates directly into parallel speedup. Better partitions cut the
// halo exchange, so multilevel-partitioned workers scale further before
// the communication wall; random partitions hit it immediately. Speedup
// can never exceed k and saturates as comm grows with k.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/distributed_sim.h"
#include "partition/partition.h"

namespace {

using sgnn::core::DistributedCostModel;
using sgnn::core::SimulateDistributedEpoch;
using sgnn::graph::CsrGraph;

const CsrGraph& Graph() {
  static const CsrGraph& g = *new CsrGraph(
      sgnn::bench::MakeBenchDataset(50000, 8, 14.0, 0.92, 51).graph);
  return g;
}

DistributedCostModel Cost() {
  DistributedCostModel cost;
  cost.seconds_per_edge = 2e-8;
  cost.seconds_per_value = 5e-9;
  cost.round_latency_seconds = 5e-4;
  return cost;
}

void Report(benchmark::State& state,
            const sgnn::core::DistributedReport& report) {
  state.counters["speedup"] = report.speedup;
  state.counters["epoch_ms"] = report.epoch_seconds * 1e3;
  state.counters["comm_ms"] = report.comm_seconds * 1e3;
  state.counters["replication"] = report.replication_factor;
}

void BM_RandomPartitionScaling(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sgnn::core::DistributedReport report;
  for (auto _ : state) {
    auto parts = sgnn::partition::RandomPartition(Graph(), k, 1);
    report = SimulateDistributedEpoch(Graph(), parts, 64, Cost());
  }
  Report(state, report);
}
BENCHMARK(BM_RandomPartitionScaling)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_MultilevelPartitionScaling(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sgnn::core::DistributedReport report;
  for (auto _ : state) {
    auto parts = sgnn::partition::MultilevelPartition(
        Graph(), k, sgnn::partition::MultilevelConfig{}, 1);
    report = SimulateDistributedEpoch(Graph(), parts, 64, Cost());
  }
  Report(state, report);
}
BENCHMARK(BM_MultilevelPartitionScaling)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FeatureDimSweep(benchmark::State& state) {
  // Wider features shift the balance toward communication: the speedup
  // of a fixed 8-way multilevel partition falls as features grow.
  const int64_t dim = state.range(0);
  static const sgnn::partition::Partition& parts =
      *new sgnn::partition::Partition(sgnn::partition::MultilevelPartition(
          Graph(), 8, sgnn::partition::MultilevelConfig{}, 1));
  sgnn::core::DistributedReport report;
  for (auto _ : state) {
    report = SimulateDistributedEpoch(Graph(), parts, dim, Cost());
  }
  Report(state, report);
}
BENCHMARK(BM_FeatureDimSweep)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
