// E17 — Online serving: micro-batching + historical embedding cache over
// a frozen decoupled head. Larger micro-batches amortise the MLP forward
// and the batcher wakeups, and a warm cache skips k-hop propagation
// entirely, so throughput rises superlinearly with batch size until the
// staleness bound (or a cold cache) forces recomputation.
// Series: req/s, p50/p95/p99 latency, cache hit rate per batch size.

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "models/decoupled.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "serve/khop_embedder.h"

namespace {

using sgnn::core::Dataset;
using sgnn::graph::NodeId;
using sgnn::serve::BatchingServer;
using sgnn::serve::FrozenModel;
using sgnn::serve::InferenceRequest;
using sgnn::serve::InferenceResponse;
using sgnn::serve::KHopEmbedder;
using sgnn::serve::ServeConfig;

constexpr int kHops = 2;

const Dataset& Data() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(20000, 4, 20.0, 0.85, 9));
  return d;
}

const sgnn::models::ModelResult& Model() {
  static const sgnn::models::ModelResult& m =
      *new sgnn::models::ModelResult(sgnn::models::TrainSgc(
          Data().graph, Data().features, Data().labels, Data().splits,
          sgnn::bench::BenchTrainConfig()));
  return m;
}

void RunServeBench(benchmark::State& state, bool use_cache) {
  ServeConfig config;
  config.max_batch = static_cast<int>(state.range(0));
  config.max_delay_micros = 200;
  config.queue_capacity = 1 << 16;
  config.num_workers = 4;
  config.update_cache = use_cache;

  KHopEmbedder embedder(Data().graph, Data().features, kHops);
  BatchingServer server(
      FrozenModel::FromMlp(*Model().fitted_head),
      [&embedder](NodeId u, std::span<float> out) {
        embedder.Embed(u, out);
        return sgnn::common::Status::OK();
      },
      Data().num_nodes(), config);

  // Requests draw from a hot set (5% of nodes) so a warm cache gets
  // realistic repeat traffic.
  const uint64_t hot_set = static_cast<uint64_t>(Data().num_nodes()) / 20;
  sgnn::common::Rng rng(7);
  constexpr int kRequestsPerIter = 512;
  int64_t served = 0;
  for (auto _ : state) {
    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(kRequestsPerIter);
    for (int i = 0; i < kRequestsPerIter; ++i) {
      auto future_or = server.Submit(
          InferenceRequest(static_cast<NodeId>(rng.UniformInt(hot_set))));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
    served += static_cast<int64_t>(futures.size());
  }
  server.Shutdown();

  const sgnn::serve::ServeMetricsSnapshot snap = server.Metrics();
  state.SetItemsProcessed(served);  // items_per_second == req/s.
  state.counters["p50_ticks"] = snap.p50_ticks;
  state.counters["p95_ticks"] = snap.p95_ticks;
  state.counters["p99_ticks"] = snap.p99_ticks;
  state.counters["cache_hit_rate"] = snap.CacheHitRate();
  state.counters["mean_batch"] = snap.mean_batch_size;
  state.counters["rejected"] = static_cast<double>(snap.requests_rejected);
}

void BM_ServeCached(benchmark::State& state) { RunServeBench(state, true); }
BENCHMARK(BM_ServeCached)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ServeNoCache(benchmark::State& state) { RunServeBench(state, false); }
BENCHMARK(BM_ServeNoCache)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
