// E4 — Graph partition quality (§3.1.2): streaming partitioners (LDG,
// Fennel) beat random on edge cut; the multilevel partitioner beats both
// and recovers planted communities; all stay within the balance cap.
// Series: edge_cut / comm_volume / imbalance per (method, k).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "partition/partition.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::partition::EvaluatePartition;
using sgnn::partition::Partition;

const CsrGraph& Graph() {
  static const CsrGraph& g = *new CsrGraph(
      sgnn::bench::MakeBenchDataset(20000, 8, 14.0, 0.9, 5).graph);
  return g;
}

void Report(benchmark::State& state, const Partition& p) {
  auto quality = EvaluatePartition(Graph(), p);
  state.counters["edge_cut"] = static_cast<double>(quality.edge_cut);
  state.counters["comm_volume"] = static_cast<double>(quality.comm_volume);
  state.counters["imbalance"] = quality.imbalance;
}

void BM_Random(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Partition p;
  for (auto _ : state) {
    p = sgnn::partition::RandomPartition(Graph(), k, 1);
    benchmark::DoNotOptimize(p);
  }
  Report(state, p);
}
BENCHMARK(BM_Random)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Ldg(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Partition p;
  for (auto _ : state) {
    p = sgnn::partition::LdgPartition(Graph(), k, 1.1, 1);
    benchmark::DoNotOptimize(p);
  }
  Report(state, p);
}
BENCHMARK(BM_Ldg)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Fennel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Partition p;
  for (auto _ : state) {
    p = sgnn::partition::FennelPartition(Graph(), k, 1.5, 1);
    benchmark::DoNotOptimize(p);
  }
  Report(state, p);
}
BENCHMARK(BM_Fennel)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Multilevel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Partition p;
  for (auto _ : state) {
    p = sgnn::partition::MultilevelPartition(
        Graph(), k, sgnn::partition::MultilevelConfig{}, 1);
    benchmark::DoNotOptimize(p);
  }
  Report(state, p);
}
BENCHMARK(BM_Multilevel)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
