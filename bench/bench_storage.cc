// E22 — Out-of-core graph storage (sgnn::storage): conversion throughput
// of the shard writer, then propagation and batch-PPR edge throughput over
// the mmap'd ShardedGraph as the resident budget shrinks from "everything
// fits" to a small fraction of the CSR bytes. The paper's storage claim is
// that disk-backed GNN systems trade bounded memory for re-read traffic:
// the per-budget shard load/eviction counters printed next to edges/s make
// that trade-off measurable, while results stay bit-identical at every
// budget (the determinism contract of DESIGN.md §4e).
//
// `bench_storage --smoke` runs a seconds-scale correctness pass instead
// (byte-identity of propagate / PPR push / sampling between the in-memory
// kernels and the out-of-core path under a tiny budget) for CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "par/par.h"
#include "ppr/ppr.h"
#include "sampling/neighbor_sampler.h"
#include "storage/ooc.h"
#include "storage/shard_writer.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"

namespace {

using sgnn::graph::CsrGraph;
using sgnn::graph::NodeId;
namespace par = sgnn::par;
namespace storage = sgnn::storage;
namespace tensor = sgnn::tensor;

constexpr int kFeatureDim = 16;
constexpr int kNumShards = 16;

std::string ScratchDir() {
  return (std::filesystem::temp_directory_path() / "sgnn_bench_storage")
      .string();
}

/// ~10^6-edge scale-free graph shared by every benchmark in the binary.
const CsrGraph& BigGraph() {
  static CsrGraph* graph = new CsrGraph(sgnn::graph::Rmat(
      NodeId(1) << 17, int64_t(1) << 20, sgnn::graph::RmatConfig{}, 7));
  return *graph;
}

/// On-disk conversion of BigGraph, written once per process.
const std::string& BigGraphDir() {
  static std::string* dir = [] {
    auto* d = new std::string(ScratchDir() + "/big");
    const auto status = storage::WriteShardedGraph(
        BigGraph(), storage::ShardPlan::Contiguous(BigGraph(), kNumShards),
        *d);
    if (!status.ok()) {
      std::fprintf(stderr, "shard conversion failed: %s\n",
                   status.message().c_str());
      std::abort();
    }
    return d;
  }();
  return *dir;
}

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  sgnn::common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

/// state.range(0) is the budget as a divisor of the total shard bytes
/// (0 = unlimited); loads/evictions per iteration land in the counters.
uint64_t BudgetFor(const storage::ShardedGraph& sg, int64_t divisor) {
  if (divisor == 0) return storage::kUnlimitedBudget;
  return sg.total_shard_bytes() / static_cast<uint64_t>(divisor);
}

void BM_ShardConversion(benchmark::State& state) {
  const CsrGraph& g = BigGraph();
  const std::string dir = ScratchDir() + "/convert";
  const storage::ShardPlan plan = storage::ShardPlan::Contiguous(g, kNumShards);
  for (auto _ : state) {
    const auto status = storage::WriteShardedGraph(g, plan, dir);
    if (!status.ok()) state.SkipWithError(status.message().c_str());
    benchmark::DoNotOptimize(status.ok());
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ShardConversion)->Unit(benchmark::kMillisecond);

void BM_OocPropagate(benchmark::State& state) {
  storage::OpenOptions probe;
  probe.budget_bytes = storage::kUnlimitedBudget;
  auto probe_or = storage::ShardedGraph::Open(BigGraphDir(), probe);
  if (!probe_or.ok()) {
    state.SkipWithError(probe_or.status().message().c_str());
    return;
  }
  storage::OpenOptions options;
  options.budget_bytes = BudgetFor(*probe_or.value(), state.range(0));
  probe_or.value().reset();
  auto open_or = storage::ShardedGraph::Open(BigGraphDir(), options);
  if (!open_or.ok()) {
    state.SkipWithError(open_or.status().message().c_str());
    return;
  }
  storage::ShardedGraph& sg = *open_or.value();
  auto prop_or = storage::OocPropagator::Create(
      &sg, sgnn::graph::Normalization::kSymmetric, /*add_self_loops=*/true);
  if (!prop_or.ok()) {
    state.SkipWithError(prop_or.status().message().c_str());
    return;
  }
  const tensor::Matrix x = RandomMatrix(sg.num_nodes(), kFeatureDim, 1);
  tensor::Matrix out;
  for (auto _ : state) {
    const auto status = prop_or.value().Apply(x, &out);
    if (!status.ok()) state.SkipWithError(status.message().c_str());
    benchmark::DoNotOptimize(out.data());
  }
  const storage::StorageStats stats = sg.stats();
  state.counters["shard_loads"] =
      static_cast<double>(stats.loads) / static_cast<double>(state.iterations());
  state.counters["shard_evictions"] =
      static_cast<double>(stats.evictions) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() * sg.num_edges());
}
BENCHMARK(BM_OocPropagate)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_OocPushBatch(benchmark::State& state) {
  storage::OpenOptions probe;
  probe.budget_bytes = storage::kUnlimitedBudget;
  auto probe_or = storage::ShardedGraph::Open(BigGraphDir(), probe);
  if (!probe_or.ok()) {
    state.SkipWithError(probe_or.status().message().c_str());
    return;
  }
  storage::OpenOptions options;
  options.budget_bytes = BudgetFor(*probe_or.value(), state.range(0));
  probe_or.value().reset();
  auto open_or = storage::ShardedGraph::Open(BigGraphDir(), options);
  if (!open_or.ok()) {
    state.SkipWithError(open_or.status().message().c_str());
    return;
  }
  storage::ShardedGraph& sg = *open_or.value();
  std::vector<NodeId> seeds;
  for (NodeId s = 0; s < 32; ++s) {
    seeds.push_back((s * 2654435761u) % sg.num_nodes());
  }
  for (auto _ : state) {
    auto results_or = storage::PushBatch(&sg, seeds, 0.15, 1e-4);
    if (!results_or.ok()) {
      state.SkipWithError(results_or.status().message().c_str());
    }
    benchmark::DoNotOptimize(results_or.ok());
  }
  const storage::StorageStats stats = sg.stats();
  state.counters["shard_loads"] =
      static_cast<double>(stats.loads) / static_cast<double>(state.iterations());
  state.counters["shard_evictions"] =
      static_cast<double>(stats.evictions) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(seeds.size()));
}
BENCHMARK(BM_OocPushBatch)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------------- smoke

bool BytesEqual(const tensor::Matrix& a, const tensor::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

/// Seconds-scale CI pass: out-of-core propagate / PPR / sampling must be
/// byte-identical to the in-memory kernels under a budget that forces
/// evictions. Returns 0 on success.
int RunSmoke() {
  const CsrGraph g = sgnn::graph::Rmat(NodeId(1) << 12, int64_t(1) << 15,
                                       sgnn::graph::RmatConfig{}, 7);
  const std::string dir = ScratchDir() + "/smoke";
  std::filesystem::remove_all(dir);
  auto status =
      storage::WriteShardedGraph(g, storage::ShardPlan::Contiguous(g, 6), dir);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.message().c_str());
    return 1;
  }
  int failures = 0;
  auto check = [&failures](const char* name, bool ok) {
    std::printf("%-24s %s\n", name, ok ? "OK" : "MISMATCH");
    if (!ok) ++failures;
  };

  // Tiny budget: two shards resident at most, so the pass must evict.
  storage::OpenOptions probe;
  probe.budget_bytes = storage::kUnlimitedBudget;
  auto probe_or = storage::ShardedGraph::Open(dir, probe);
  if (!probe_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 probe_or.status().message().c_str());
    return 1;
  }
  uint64_t max_shard_bytes = 0;
  for (const storage::ShardEntry& entry : probe_or.value()->manifest().shards) {
    max_shard_bytes = std::max(max_shard_bytes, entry.file_bytes);
  }
  probe_or.value().reset();
  storage::OpenOptions options;
  options.budget_bytes = 2 * max_shard_bytes;
  auto open_or = storage::ShardedGraph::Open(dir, options);
  if (!open_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 open_or.status().message().c_str());
    return 1;
  }
  storage::ShardedGraph& sg = *open_or.value();

  const tensor::Matrix x = RandomMatrix(g.num_nodes(), 8, 1);
  sgnn::graph::Propagator prop(g, sgnn::graph::Normalization::kSymmetric,
                               true);
  tensor::Matrix want;
  prop.Apply(x, &want);
  auto ooc_or = storage::OocPropagator::Create(
      &sg, sgnn::graph::Normalization::kSymmetric, true);
  tensor::Matrix got;
  bool prop_ok = ooc_or.ok() && ooc_or.value().Apply(x, &got).ok();
  check("ooc.propagate", prop_ok && BytesEqual(want, got));

  std::vector<NodeId> seeds = {1, 5, 9, 13, 21, 34};
  const auto push_mem = sgnn::ppr::PushBatch(g, seeds, 0.15, 1e-3);
  auto push_or = storage::PushBatch(&sg, seeds, 0.15, 1e-3);
  bool push_ok = push_or.ok() && push_or.value().size() == push_mem.size();
  for (size_t i = 0; push_ok && i < push_mem.size(); ++i) {
    push_ok = push_or.value()[i].estimate == push_mem[i].estimate;
  }
  check("ooc.push_batch", push_ok);

  const std::vector<int> fanouts = {5, 3};
  sgnn::common::Rng rng_mem(11);
  const auto batch_mem =
      sgnn::sampling::SampleNodeWise(g, seeds, fanouts, &rng_mem);
  sgnn::common::Rng rng_ooc(11);
  auto batch_or = storage::SampleNodeWise(&sg, seeds, fanouts, &rng_ooc);
  bool sample_ok =
      batch_or.ok() && batch_or.value().layers.size() == batch_mem.layers.size();
  for (size_t l = 0; sample_ok && l < batch_mem.layers.size(); ++l) {
    sample_ok =
        batch_or.value().layers[l].src == batch_mem.layers[l].src &&
        batch_or.value().layers[l].src_local == batch_mem.layers[l].src_local &&
        batch_or.value().layers[l].weights == batch_mem.layers[l].weights;
  }
  check("ooc.sample_node_wise", sample_ok);

  const storage::StorageStats stats = sg.stats();
  check("budget.respected", stats.peak_resident_bytes <= options.budget_bytes);
  check("evictions.nonzero", stats.evictions > 0);
  std::printf("loads=%llu evictions=%llu peak=%llu budget=%llu\n",
              static_cast<unsigned long long>(stats.loads),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.peak_resident_bytes),
              static_cast<unsigned long long>(options.budget_bytes));

  std::filesystem::remove_all(dir);
  std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") return RunSmoke();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::filesystem::remove_all(ScratchDir());
  return 0;
}
