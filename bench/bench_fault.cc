// E18 — Robustness: what resilience costs and what it buys. Three series:
// (a) serving under injected embedder failure rates (0 / 1% / 10%) with a
// warm cache — degraded-mode serving turns would-be errors into stale
// serves, so goodput degrades gently rather than cliff-dropping; (b) a
// dead embedder with the circuit breaker enabled vs disabled — fast-fail
// avoids burning worker time on retry storms; (c) pipeline snapshot
// save/load bandwidth, the recurring cost a checkpoint interval pays.
// Series: req/s + degraded/failed/retry counts per failure rate; req/s
// with/without breaker; snapshot MB/s.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "nn/mlp.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"

namespace {

using sgnn::common::FaultInjector;
using sgnn::common::Status;
using sgnn::core::Dataset;
using sgnn::graph::NodeId;
using sgnn::serve::BatchingServer;
using sgnn::serve::FrozenModel;
using sgnn::serve::InferenceRequest;
using sgnn::serve::InferenceResponse;
using sgnn::serve::ServeConfig;
using sgnn::serve::ServeMetricsSnapshot;

constexpr int64_t kEmbedDim = 16;
constexpr NodeId kNodes = 10000;

FrozenModel BenchModel() {
  sgnn::common::Rng rng(21);
  sgnn::nn::Mlp mlp({kEmbedDim, 32, 4}, /*dropout=*/0.0, &rng);
  return FrozenModel::FromMlp(mlp);
}

void FillEmbedding(NodeId node, std::span<float> out) {
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = 0.001f * static_cast<float>(node) + static_cast<float>(j);
  }
}

sgnn::tensor::Matrix WarmEmbeddings() {
  sgnn::tensor::Matrix warm(kNodes, kEmbedDim);
  for (NodeId u = 0; u < kNodes; ++u) FillEmbedding(u, warm.Row(u));
  return warm;
}

// (a) Throughput as the injected per-call failure probability rises.
// Arg = failure rate in permille.
void BM_ServeUnderFaults(benchmark::State& state) {
  const double fail_rate = static_cast<double>(state.range(0)) / 1000.0;
  FaultInjector faults(0xbe7c);
  faults.Arm("serve.embed", fail_rate);

  ServeConfig config;
  config.max_batch = 32;
  config.max_delay_micros = 200;
  config.queue_capacity = 1 << 14;
  config.num_workers = 4;
  config.max_staleness = 4;  // Recompute often: misses hit the embedder.
  config.degraded_serving = true;
  config.embed_retry.max_attempts = 2;
  config.embed_retry.base_backoff_micros = 20;

  BatchingServer server(
      BenchModel(),
      [&faults](NodeId u, std::span<float> out) {
        SGNN_RETURN_IF_ERROR(faults.MaybeFail("serve.embed", u));
        FillEmbedding(u, out);
        return Status::OK();
      },
      kNodes, config);
  server.WarmCache(WarmEmbeddings());

  const uint64_t hot_set = kNodes / 20;
  sgnn::common::Rng rng(7);
  constexpr int kRequestsPerIter = 256;
  int64_t served = 0;
  for (auto _ : state) {
    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(kRequestsPerIter);
    for (int i = 0; i < kRequestsPerIter; ++i) {
      auto future_or =
          server.Submit(
              InferenceRequest(static_cast<NodeId>(rng.UniformInt(hot_set))));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
    served += static_cast<int64_t>(futures.size());
  }
  server.Shutdown();

  const ServeMetricsSnapshot snap = server.Metrics();
  state.SetItemsProcessed(served);
  state.counters["degraded"] =
      static_cast<double>(snap.health.degraded_serves);
  state.counters["failed"] = static_cast<double>(snap.health.failed_requests);
  state.counters["retries"] = static_cast<double>(snap.health.retries);
  state.counters["embed_failures"] =
      static_cast<double>(snap.health.embed_failures);
}
BENCHMARK(BM_ServeUnderFaults)
    ->Arg(0)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// (b) Embedder fully down: the breaker's fast-fail path vs a retry storm.
// Arg = 1 enables the breaker (realistic config), 0 disables it.
void BM_DeadEmbedderBreaker(benchmark::State& state) {
  const bool breaker_on = state.range(0) != 0;

  ServeConfig config;
  config.max_batch = 32;
  config.max_delay_micros = 200;
  config.queue_capacity = 1 << 14;
  config.num_workers = 4;
  config.max_staleness = 0;  // Warm rows are stale: every serve is a miss.
  config.degraded_serving = true;  // Requests still succeed (degraded).
  config.embed_retry.max_attempts = 3;
  config.embed_retry.base_backoff_micros = 50;
  config.breaker.failure_threshold = breaker_on ? 8 : (1 << 30);
  config.breaker.probe_interval = 64;

  BatchingServer server(
      BenchModel(),
      [](NodeId, std::span<float>) {
        return Status::Unavailable("embedder down");
      },
      kNodes, config);
  server.WarmCache(WarmEmbeddings());

  sgnn::common::Rng rng(11);
  constexpr int kRequestsPerIter = 256;
  int64_t served = 0;
  for (auto _ : state) {
    std::vector<std::future<InferenceResponse>> futures;
    futures.reserve(kRequestsPerIter);
    for (int i = 0; i < kRequestsPerIter; ++i) {
      auto future_or =
          server.Submit(
              InferenceRequest(static_cast<NodeId>(rng.UniformInt(kNodes))));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
    served += static_cast<int64_t>(futures.size());
  }
  server.Shutdown();

  const ServeMetricsSnapshot snap = server.Metrics();
  state.SetItemsProcessed(served);
  state.counters["fast_fails"] =
      static_cast<double>(snap.health.breaker_fast_fails);
  state.counters["embed_failures"] =
      static_cast<double>(snap.health.embed_failures);
  state.counters["degraded"] =
      static_cast<double>(snap.health.degraded_serves);
}
BENCHMARK(BM_DeadEmbedderBreaker)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// (c) Snapshot save + load round-trip: the recurring write cost a
// checkpoint interval amortises (compare against the closed-form optimum
// in `PlanCheckpoints`).
void BM_SnapshotRoundTrip(benchmark::State& state) {
  const Dataset d = sgnn::bench::MakeBenchDataset(
      static_cast<NodeId>(state.range(0)), 4, 16.0, 0.85, 13);
  sgnn::core::PipelineSnapshot snap;
  snap.signature = 42;
  snap.stages_done = 1;
  snap.stages.push_back({"edit:bench", 0.5, {}});
  snap.graph = d.graph;
  snap.features = d.features;

  const std::string path =
      (std::filesystem::temp_directory_path() / "sgnn_bench_snap.bin")
          .string();
  int64_t bytes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sgnn::core::SaveSnapshot(snap, path));
    auto loaded = sgnn::core::LoadSnapshot(path, 42);
    benchmark::DoNotOptimize(loaded);
    bytes += static_cast<int64_t>(std::filesystem::file_size(path));
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(bytes);  // Save-side volume; load adds as much.
  state.counters["snapshot_mb"] = static_cast<double>(bytes) /
                                  static_cast<double>(state.iterations()) /
                                  (1024.0 * 1024.0);
}
BENCHMARK(BM_SnapshotRoundTrip)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
