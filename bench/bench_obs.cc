// E20: cost of the sgnn::obs layer. Three pipeline variants isolate the
// two numbers EXPERIMENTS.md quotes: `Plain` (legacy two-arg Run) vs
// `CtxDisabled` (RunContext threaded through, tracer/metrics null) is the
// disabled-but-compiled-in overhead; `CtxDisabled` vs `CtxEnabled` (live
// Tracer + MetricsRegistry) is the cost of actually recording. A serving
// soak repeats the comparison where spans are per-batch, and micro
// benchmarks price the individual primitives (counter bump, span
// open/close, Prometheus render).
#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "serve/khop_embedder.h"

namespace sgnn {
namespace {

core::Dataset Dataset(int64_t num_nodes) {
  return bench::MakeBenchDataset(static_cast<graph::NodeId>(num_nodes), 4,
                                 12.0, 0.8, 17);
}

core::Pipeline MakePipeline() {
  core::Pipeline pipeline;
  pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
      .AddAnalytics(core::MakePprSmoothingStage(0.15, 2))
      .SetModel("gcn", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& c) {
        return models::TrainGcn(g, x, labels, splits, c);
      });
  return pipeline;
}

enum class ObsMode { kPlain, kCtxDisabled, kCtxEnabled };

void RunPipeline(benchmark::State& state, ObsMode mode) {
  core::Dataset d = Dataset(state.range(0));
  nn::TrainConfig config = bench::BenchTrainConfig();
  config.epochs = 5;  // Preprocessing-dominated: per-stage overhead shows.
  core::Pipeline pipeline = MakePipeline();
  for (auto _ : state) {
    core::PipelineReport report;
    switch (mode) {
      case ObsMode::kPlain:
        report = pipeline.Run(d, config);
        break;
      case ObsMode::kCtxDisabled:
        report = pipeline.Run(d, config, core::RunContext());
        break;
      case ObsMode::kCtxEnabled: {
        obs::Tracer tracer;
        obs::MetricsRegistry metrics;
        core::RunContext ctx;
        ctx.tracer = &tracer;
        ctx.metrics = &metrics;
        report = pipeline.Run(d, config, ctx);
        benchmark::DoNotOptimize(metrics.NumSeries());
        break;
      }
    }
    SGNN_CHECK(report.status.ok());
    benchmark::DoNotOptimize(report);
  }
}

void BM_PipelinePlain(benchmark::State& state) {
  RunPipeline(state, ObsMode::kPlain);
}
void BM_PipelineCtxDisabled(benchmark::State& state) {
  RunPipeline(state, ObsMode::kCtxDisabled);
}
void BM_PipelineCtxEnabled(benchmark::State& state) {
  RunPipeline(state, ObsMode::kCtxEnabled);
}
BENCHMARK(BM_PipelinePlain)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineCtxDisabled)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineCtxEnabled)->Arg(10000)->Unit(benchmark::kMillisecond);

/// Serving soak: submit a fixed request stream through the batching
/// server with observability off (no ctx) vs on (tracer + registry
/// threaded through RunContext). Spans open per micro-batch and every
/// request touches the registry, so this is the worst-case hot path.
void RunServeSoak(benchmark::State& state, bool observed) {
  static const core::Dataset& data =
      *new core::Dataset(bench::MakeBenchDataset(20000, 4, 20.0, 0.85, 9));
  static const models::ModelResult& model =
      *new models::ModelResult(models::TrainSgc(data.graph, data.features,
                                                data.labels, data.splits,
                                                bench::BenchTrainConfig()));
  serve::ServeConfig config;
  config.max_batch = 32;
  config.max_delay_micros = 200;
  config.queue_capacity = 1 << 16;
  config.num_workers = 4;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  core::RunContext ctx;
  if (observed) {
    ctx.tracer = &tracer;
    ctx.metrics = &metrics;
  }

  serve::KHopEmbedder embedder(data.graph, data.features, /*hops=*/2);
  serve::BatchingServer server(
      serve::FrozenModel::FromMlp(*model.fitted_head),
      [&embedder](graph::NodeId u, std::span<float> out) {
        embedder.Embed(u, out);
        return common::Status::OK();
      },
      data.num_nodes(), config, ctx);

  const uint64_t hot_set = static_cast<uint64_t>(data.num_nodes()) / 20;
  common::Rng rng(7);
  constexpr int kRequestsPerIter = 512;
  int64_t served = 0;
  for (auto _ : state) {
    std::vector<std::future<serve::InferenceResponse>> futures;
    futures.reserve(kRequestsPerIter);
    for (int i = 0; i < kRequestsPerIter; ++i) {
      auto future_or = server.Submit(serve::InferenceRequest(
          static_cast<graph::NodeId>(rng.UniformInt(hot_set))));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
    served += static_cast<int64_t>(futures.size());
  }
  server.Shutdown();
  state.SetItemsProcessed(served);
  if (observed) {
    state.counters["series"] = static_cast<double>(metrics.NumSeries());
    state.counters["spans"] = static_cast<double>(tracer.NumEvents());
  }
}

void BM_ServeSoakUnobserved(benchmark::State& state) {
  RunServeSoak(state, false);
}
void BM_ServeSoakObserved(benchmark::State& state) {
  RunServeSoak(state, true);
}
BENCHMARK(BM_ServeSoakUnobserved)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ServeSoakObserved)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Primitive costs: what one registry/tracer touch prices at, and what a
// scrape of a realistically sized registry costs.
void BM_CounterIncrement(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  obs::Counter* c = metrics.GetCounter("bench_total", "bench");
  for (auto _ : state) {
    c->Increment();
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  obs::Histogram* h =
      metrics.GetHistogram("bench_lat", "bench",
                           obs::ExponentialBuckets(1.0, 1.07, 256));
  double v = 1.0;
  for (auto _ : state) {
    h->Record(v);
    v = v < 100000.0 ? v * 1.01 : 1.0;
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_SpanOpenClose(benchmark::State& state) {
  obs::Tracer tracer;
  for (auto _ : state) {
    obs::TraceSpan span = obs::StartSpan(&tracer, "bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
  state.counters["events"] = static_cast<double>(tracer.NumEvents());
}
BENCHMARK(BM_SpanOpenClose);

void BM_NullSpanOpenClose(benchmark::State& state) {
  for (auto _ : state) {
    obs::TraceSpan span = obs::StartSpan(nullptr, "bench.span", "bench");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_NullSpanOpenClose);

void BM_PrometheusRender(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    const obs::Labels labels = {{"idx", std::to_string(i)}};
    metrics.GetCounter("bench_requests_total", "bench", labels)->Increment();
    metrics.GetGauge("bench_depth", "bench", labels)->Set(i);
    metrics
        .GetHistogram("bench_lat", "bench",
                      obs::ExponentialBuckets(1.0, 2.0, 16), labels)
        ->Record(static_cast<double>(i));
  }
  for (auto _ : state) {
    std::string text = metrics.PrometheusText();
    benchmark::DoNotOptimize(text);
  }
  state.counters["series"] = static_cast<double>(metrics.NumSeries());
}
BENCHMARK(BM_PrometheusRender)->Arg(8)->Arg(64);

}  // namespace
}  // namespace sgnn

BENCHMARK_MAIN();
