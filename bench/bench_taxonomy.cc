// E1 — Figure 1 reproduction: every branch of the paper's taxonomy is an
// executable technique. One benchmark per registry entry runs that
// technique's demo on a shared SBM dataset; the demo summary is attached
// as the benchmark label, so the output *is* the taxonomy with numbers.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/registry.h"

namespace {

const sgnn::core::Dataset& SharedDataset() {
  static const sgnn::core::Dataset& dataset =
      *new sgnn::core::Dataset(sgnn::bench::MakeBenchDataset(
          2000, 4, 12.0, 0.85, /*seed=*/1));
  return dataset;
}

void RunTechnique(benchmark::State& state, const sgnn::core::Technique& t) {
  std::string summary;
  for (auto _ : state) {
    summary = t.demo(SharedDataset());
    benchmark::DoNotOptimize(summary);
  }
  state.SetLabel(t.figure1_path + " | " + summary);
}

}  // namespace

int main(int argc, char** argv) {
  for (const sgnn::core::Technique& t : sgnn::core::TechniqueRegistry()) {
    benchmark::RegisterBenchmark(("taxonomy/" + t.name).c_str(),
                                 [&t](benchmark::State& state) {
                                   RunTechnique(state, t);
                                 })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
