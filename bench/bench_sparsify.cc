// E9 — Sparsification (§3.3.1, SCARA/Unifews/ATP): downstream accuracy
// degrades gracefully down to ~20-40% kept edges while propagation cost
// falls linearly; resistance-weighted sampling preserves accuracy better
// than uniform at equal budgets on skewed graphs; entry-wise pruning
// (Unifews) skips most scalar ops at negligible embedding error.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/propagate.h"
#include "models/decoupled.h"
#include "ppr/feature_propagation.h"
#include "sparsify/sparsify.h"
#include "tensor/ops.h"

namespace {

using sgnn::core::Dataset;

const Dataset& Data() {
  static const Dataset& d =
      *new Dataset(sgnn::bench::MakeBenchDataset(5000, 4, 16.0, 0.85, 23));
  return d;
}

void TrainOnGraph(benchmark::State& state, const sgnn::graph::CsrGraph& g) {
  auto result = sgnn::models::TrainSgc(
      g, Data().features, Data().labels, Data().splits,
      sgnn::bench::BenchTrainConfig(), sgnn::models::SgcConfig{.hops = 3});
  state.counters["test_acc"] = result.report.test_accuracy;
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.counters["keep_ratio"] =
      static_cast<double>(g.num_edges()) /
      static_cast<double>(Data().graph.num_edges());
}

void BM_UniformKeepRatio(benchmark::State& state) {
  const double keep = static_cast<double>(state.range(0)) / 100.0;
  sgnn::graph::CsrGraph sparse(0);
  for (auto _ : state) {
    sparse = sgnn::sparsify::UniformSparsify(Data().graph, keep, true, 3);
    benchmark::DoNotOptimize(sparse);
  }
  TrainOnGraph(state, sparse);
}
BENCHMARK(BM_UniformKeepRatio)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(70)->Arg(100)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SpectralKeepRatio(benchmark::State& state) {
  const double keep = static_cast<double>(state.range(0)) / 100.0;
  const int64_t samples =
      static_cast<int64_t>(keep * static_cast<double>(Data().graph.num_edges()) / 2.0);
  sgnn::graph::CsrGraph sparse(0);
  for (auto _ : state) {
    sparse = sgnn::sparsify::SpectralSparsify(Data().graph, samples, 3);
    benchmark::DoNotOptimize(sparse);
  }
  TrainOnGraph(state, sparse);
}
BENCHMARK(BM_SpectralKeepRatio)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(70)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_DegreeAware(benchmark::State& state) {
  const int keep_per_hub = static_cast<int>(state.range(0));
  sgnn::graph::CsrGraph sparse(0);
  sgnn::sparsify::DegreeAwareStats stats;
  for (auto _ : state) {
    sparse = sgnn::sparsify::DegreeAwarePrune(Data().graph, 20, keep_per_hub,
                                              &stats);
    benchmark::DoNotOptimize(sparse);
  }
  state.counters["hubs"] = static_cast<double>(stats.hubs);
  TrainOnGraph(state, sparse);
}
BENCHMARK(BM_DegreeAware)
    ->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_UnifewsEntrywise(benchmark::State& state) {
  // Ops skipped and embedding error vs threshold: the entry-wise story.
  const double threshold =
      static_cast<double>(state.range(0)) / 10000.0;
  sgnn::graph::Propagator prop(Data().graph,
                               sgnn::graph::Normalization::kSymmetric, true);
  auto dense = sgnn::ppr::AppnpPropagate(prop, Data().features, 0.15, 4);
  sgnn::ppr::ThresholdedStats stats;
  sgnn::tensor::Matrix pruned;
  for (auto _ : state) {
    pruned = sgnn::ppr::ThresholdedPropagate(prop, Data().features, 0.15, 4,
                                             threshold, &stats);
    benchmark::DoNotOptimize(pruned);
  }
  state.counters["ops_skipped_frac"] =
      static_cast<double>(stats.ops_skipped) /
      static_cast<double>(stats.ops_skipped + stats.ops_performed);
  state.counters["max_err"] = sgnn::tensor::MaxAbsDiff(dense, pruned);
}
BENCHMARK(BM_UnifewsEntrywise)
    ->Arg(0)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
