// Observability tour: run a seeded pipeline and an online-serving burst
// with a Tracer + MetricsRegistry threaded through core::RunContext, then
// export everything a scraper or trace viewer would consume:
//   1. Prometheus text exposition (stable-sorted, deterministic subset),
//   2. the same registry as JSON,
//   3. a Chrome trace_event JSON timeline in logical ticks.
//
// `--prometheus-only` prints just the exposition text to stdout; the
// check_metrics_exposition ctest drives the example in that mode and
// validates the output against the exposition grammar.

#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "core/pipeline.h"
#include "core/run_context.h"
#include "core/stages.h"
#include "models/decoupled.h"
#include "models/gcn.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "serve/khop_embedder.h"

int main(int argc, char** argv) {
  using namespace sgnn;
  const bool prometheus_only =
      argc > 1 && std::strcmp(argv[1], "--prometheus-only") == 0;

  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  core::RunContext ctx;
  ctx.tracer = &tracer;
  ctx.metrics = &metrics;

  // 1. A seeded preprocessing + training pipeline, fully instrumented.
  core::SbmDatasetConfig sbm_config;
  sbm_config.sbm = {.num_nodes = 400, .num_classes = 3, .avg_degree = 8,
                    .homophily = 0.85};
  sbm_config.feature_dim = 8;
  core::Dataset dataset = core::MakeSbmDataset(sbm_config, /*seed=*/41);
  nn::TrainConfig config;
  config.epochs = 20;
  config.hidden_dim = 16;
  core::Pipeline pipeline;
  pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
      .AddAnalytics(core::MakePprSmoothingStage(0.15, 2))
      .SetModel("gcn", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& c) {
        return models::TrainGcn(g, x, labels, splits, c);
      });
  core::PipelineReport report = pipeline.Run(dataset, config, ctx);
  if (!report.status.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status.ToString().c_str());
    return 1;
  }

  // 2. An online-serving burst against the trained head, sharing the same
  // registry so one scrape covers both offline and online series.
  models::ModelResult sgc = models::TrainSgc(
      dataset.graph, dataset.features, dataset.labels, dataset.splits,
      config);
  serve::ServeConfig serve_config;
  serve_config.max_batch = 16;
  serve_config.num_workers = 2;
  {
    serve::KHopEmbedder embedder(dataset.graph, dataset.features, /*hops=*/2);
    serve::BatchingServer server(
        serve::FrozenModel::FromMlp(*sgc.fitted_head),
        [&embedder](graph::NodeId u, std::span<float> out) {
          embedder.Embed(u, out);
          return common::Status::OK();
        },
        dataset.num_nodes(), serve_config, ctx);
    std::vector<std::future<serve::InferenceResponse>> futures;
    for (graph::NodeId node = 0; node < 64; ++node) {
      auto future_or =
          server.Submit(serve::InferenceRequest(node % dataset.num_nodes()));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) future.get();
    server.Metrics();  // Refreshes breaker/pool/ops gauges before scraping.
    server.Shutdown();
  }

  if (prometheus_only) {
    std::fputs(metrics.PrometheusText().c_str(), stdout);
    return 0;
  }

  std::printf("=== pipeline report ===\n%s\n", report.ToString().c_str());
  std::printf("=== prometheus exposition (%zu series) ===\n%s\n",
              metrics.NumSeries(), metrics.PrometheusText().c_str());
  std::printf("=== registry json ===\n%s\n", metrics.JsonText().c_str());
  std::printf("=== chrome trace (%llu events, logical ticks) ===\n%s",
              static_cast<unsigned long long>(tracer.NumEvents()),
              tracer.ChromeTraceJson().c_str());
  return 0;
}
