// Personalised recommendation over a co-purchase network (§3.2.2 / E3).
//
// A Barabási–Albert graph stands in for an e-commerce co-purchase network
// (heavy-tailed popularity). The example answers "what should we show
// user u?" with three PPR engines — exact power iteration, forward push,
// and Monte-Carlo walks — and compares their cost, then uses a hub-label
// index for instant "how far apart are these two products?" queries.

#include <cstdio>

#include "common/counters.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "ppr/ppr.h"
#include "similarity/hub_labeling.h"

int main() {
  using namespace sgnn;

  const graph::NodeId n = 50000;
  std::printf("building co-purchase graph (BA, n=%u, m=4)...\n", n);
  graph::CsrGraph g = graph::BarabasiAlbert(n, 4, 13);
  auto stats = graph::ComputeDegreeStats(g);
  std::printf("degrees: mean %.1f max %lld\n\n", stats.mean,
              static_cast<long long>(stats.max));

  const graph::NodeId user = 4242;
  const double alpha = 0.15;

  // Exact baseline.
  common::WallTimer timer;
  common::ScopedCounterDelta power_scope;
  auto exact = ppr::PowerIterationPpr(g, user, alpha, 1e-10, 200);
  const uint64_t power_edges = power_scope.Delta().edges_touched;
  std::printf("power iteration: %.3fs, %llu edges touched\n",
              timer.Seconds(),
              static_cast<unsigned long long>(power_edges));

  // Forward push at product-ranking precision.
  timer.Restart();
  ppr::PushResult push = ppr::ForwardPush(g, user, alpha, 1e-6);
  std::printf("forward push:    %.3fs, %lld edges touched (%.1fx fewer "
              "than power iteration)\n",
              timer.Seconds(),
              static_cast<long long>(push.edges_touched),
              static_cast<double>(power_edges) /
                  static_cast<double>(push.edges_touched));

  // Monte-Carlo sketch.
  timer.Restart();
  auto mc = ppr::MonteCarloPpr(g, user, alpha, 20000, 17);
  std::printf("monte carlo:     %.3fs (20k walks)\n\n", timer.Seconds());

  auto top = ppr::TopKPpr(g, user, alpha, 10, 1e-7);
  std::printf("top-10 recommendations for user %u:\n", user);
  for (const auto& [v, mass] : top) {
    std::printf("  product %-8u ppr %.5f  exact %.5f  mc %.5f\n", v, mass,
                exact[v], mc[v]);
  }

  // Hub-label index over a smaller catalogue slice for SPD queries.
  std::printf("\nbuilding hub-label index over a 5000-node slice...\n");
  std::vector<graph::NodeId> slice(5000);
  for (graph::NodeId i = 0; i < 5000; ++i) slice[i] = i;
  graph::CsrGraph sub = g.InducedSubgraph(slice);
  timer.Restart();
  similarity::HubLabeling index(sub);
  const double build_s = timer.Seconds();
  timer.Restart();
  int64_t checksum = 0;
  const int queries = 100000;
  for (int q = 0; q < queries; ++q) {
    checksum += index.Query(static_cast<graph::NodeId>(q % 5000),
                            static_cast<graph::NodeId>((q * 7919) % 5000));
  }
  const double query_s = timer.Seconds();
  std::printf("index build %.3fs (%lld entries); %d queries in %.3fs "
              "(%.2f us/query, checksum %lld)\n",
              build_s, static_cast<long long>(index.TotalLabelEntries()),
              queries, query_s, 1e6 * query_s / queries,
              static_cast<long long>(checksum));
  return 0;
}
