// Heterophilous node classification (the §3.2 scenario).
//
// Anomaly-detection-style graphs connect dissimilar nodes. This example
// sweeps the homophily dial of an SBM and compares three designs:
//   * SGC           — pure low-pass decoupled smoothing (fails off-dial),
//   * LD2-style     — combined low/high-pass decoupled embeddings,
//   * DHGR-style    — similarity rewiring in front of a plain GCN,
// reproducing the tutorial's claim that analytics-side techniques restore
// accuracy under heterophily without giving up scalability.

#include <cstdio>

#include "core/dataset.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "graph/metrics.h"
#include "models/decoupled.h"
#include "models/gcn.h"

int main() {
  using namespace sgnn;

  nn::TrainConfig config;
  config.epochs = 80;
  config.hidden_dim = 32;
  config.lr = 0.02;

  std::printf("%-10s %-12s %-12s %-12s %-12s\n", "homophily", "sgc",
              "ld2-style", "rewire+gcn", "edge-homo");
  for (double h : {0.05, 1.0 / 3.0, 0.6, 0.9}) {
    core::SbmDatasetConfig dconfig;
    dconfig.sbm = {.num_nodes = 800, .num_classes = 3, .avg_degree = 12,
                   .homophily = h};
    dconfig.feature_dim = 12;
    dconfig.feature_noise = 0.6;
    core::Dataset dataset = core::MakeSbmDataset(dconfig, 11);

    models::ModelResult sgc =
        models::TrainSgc(dataset.graph, dataset.features, dataset.labels,
                         dataset.splits, config, models::SgcConfig{.hops = 4});
    models::ModelResult ld2 = models::TrainSpectralDecoupled(
        dataset.graph, dataset.features, dataset.labels, dataset.splits,
        config);

    similarity::RewiringConfig rewire;
    rewire.add_per_node = 4;
    rewire.add_threshold = 0.6;
    rewire.remove_threshold = 0.3;
    core::Pipeline pipeline;
    pipeline.AddEdit(core::MakeRewiringStage(rewire))
        .SetModel("gcn", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                            std::span<const int> labels,
                            const models::NodeSplits& splits,
                            const nn::TrainConfig& c) {
          return models::TrainGcn(g, x, labels, splits, c);
        });
    core::PipelineReport rewired = pipeline.Run(dataset, config);

    std::printf("%-10.2f %-12.3f %-12.3f %-12.3f %-12.3f\n", h,
                sgc.report.test_accuracy, ld2.report.test_accuracy,
                rewired.model.report.test_accuracy,
                graph::EdgeHomophily(dataset.graph, dataset.labels));
  }
  std::printf(
      "\nExpected shape: sgc collapses near homophily = 1/3 (neutral "
      "mixing) while the multi-channel and rewiring pipelines stay high; "
      "rewiring trades a little accuracy on already-homophilous graphs, "
      "where edge removal can only hurt.\n");
  return 0;
}
