// Mini-batch training on a larger graph (the §3.1.2 scenario).
//
// Full-batch GCN keeps whole-graph activations resident; the two classic
// mini-batch families bound that working set:
//   * GraphSAGE    — node-wise neighbour sampling (optionally LABOR),
//   * Cluster-GCN  — multilevel partition batches.
// The run prints accuracy plus the library's hardware-independent work
// counters so the memory/computation trade-off is visible on a laptop.

#include <cstdio>

#include "core/dataset.h"
#include "models/cluster_gcn.h"
#include "models/gcn.h"
#include "models/sage.h"

int main() {
  using namespace sgnn;

  core::SbmDatasetConfig dconfig;
  dconfig.sbm = {.num_nodes = 20000, .num_classes = 5, .avg_degree = 12,
                 .homophily = 0.85};
  dconfig.feature_dim = 16;
  dconfig.feature_noise = 0.6;
  std::printf("building SBM dataset (n=%u, ~%.0f avg degree)...\n",
              dconfig.sbm.num_nodes, dconfig.sbm.avg_degree);
  core::Dataset dataset = core::MakeSbmDataset(dconfig, 3);
  std::printf("graph: %lld directed edges\n\n",
              static_cast<long long>(dataset.graph.num_edges()));

  nn::TrainConfig config;
  config.epochs = 15;
  config.hidden_dim = 32;
  config.lr = 0.02;
  config.patience = 8;
  config.batch_size = 256;

  auto print = [](const models::ModelResult& r) {
    std::printf("%-14s test %.3f  epochs %2d  %6.2fs  %s\n", r.name.c_str(),
                r.report.test_accuracy, r.report.epochs_run,
                r.report.train_seconds, r.ops.ToString().c_str());
  };

  common::GlobalCounters().Reset();
  print(models::TrainGcn(dataset.graph, dataset.features, dataset.labels,
                         dataset.splits, config));

  common::GlobalCounters().Reset();
  print(models::TrainSage(dataset.graph, dataset.features, dataset.labels,
                          dataset.splits, config,
                          models::SageConfig{.fanouts = {10, 10}}));

  common::GlobalCounters().Reset();
  print(models::TrainSage(
      dataset.graph, dataset.features, dataset.labels, dataset.splits, config,
      models::SageConfig{.fanouts = {10, 10}, .use_labor = true}));

  common::GlobalCounters().Reset();
  print(models::TrainClusterGcn(
      dataset.graph, dataset.features, dataset.labels, dataset.splits, config,
      models::ClusterGcnConfig{.num_parts = 32, .parts_per_batch = 2}));

  std::printf(
      "\nExpected shape: all four reach similar accuracy; the mini-batch "
      "methods trade extra sampled edges for a bounded resident set.\n");
  return 0;
}
