// Distributed execution tour: run partition-parallel propagation over real
// forked worker processes with per-layer halo exchange, then break it on
// purpose and watch it heal:
//   1. a clean multi-process run, bit-identical to the single-process
//      Propagator at every worker count,
//   2. the measured halo wire bytes next to the volume E15's simulator
//      predicts for the same partition,
//   3. a seeded mid-epoch worker kill — detected, respawned, replayed —
//      with the output still bit-identical,
//   4. per-epoch checkpointing and a resumed run that skips completed
//      epochs (at a different worker count, which bit-identity makes
//      legal).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/fault.h"
#include "common/rng.h"
#include "core/distributed_sim.h"
#include "core/run_context.h"
#include "dist/coordinator.h"
#include "dist/frame.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "obs/metrics.h"
#include "partition/partition.h"
#include "tensor/matrix.h"

int main() {
  using namespace sgnn;

  // A scale-free graph, LDG-partitioned, with random dense features.
  const graph::CsrGraph g = graph::Rmat(graph::NodeId(1) << 12,
                                        int64_t(1) << 15,
                                        graph::RmatConfig{}, 7);
  tensor::Matrix x(g.num_nodes(), 32);
  common::Rng rng(1);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  dist::DistOptions opts;
  opts.hops = 2;
  const graph::Propagator prop(g, opts.norm, opts.add_self_loops);
  const tensor::Matrix want = graph::PropagateKHops(prop, x, opts.hops);

  obs::MetricsRegistry metrics;
  common::FaultInjector no_faults;

  // 1. Clean runs: same bytes out at every worker count.
  std::printf("== bit-identity across worker counts ==\n");
  for (const int k : {1, 2, 4}) {
    const partition::Partition parts = partition::LdgPartition(g, k, 1.05, 31);
    core::RunContext ctx;
    ctx.metrics = &metrics;
    ctx.faults = &no_faults;
    dist::DistReport report;
    auto out_or = dist::RunDistributedPropagation(g, parts, x, opts, ctx,
                                                  &report);
    if (!out_or.ok()) {
      std::printf("k=%d failed: %s\n", k, out_or.status().ToString().c_str());
      return 1;
    }
    const bool identical =
        std::memcmp(want.data(), out_or.value().data(),
                    static_cast<size_t>(want.size()) * sizeof(float)) == 0;
    std::printf("k=%d: %d epochs, %llu halo bytes, bit-identical: %s\n", k,
                report.epochs_run,
                static_cast<unsigned long long>(report.halo_bytes),
                identical ? "yes" : "NO");
    if (!identical) return 1;

    // 2. Measured wire bytes vs the E15 simulator on the same partition.
    if (k == 4) {
      const auto sim = core::SimulateDistributedEpoch(
          g, parts, x.cols(), core::DistributedCostModel{});
      int64_t sim_values = 0;
      for (const auto& w : sim.workers) sim_values += w.halo_values;
      std::printf("   simulated halo volume: %lld floats = %lld bytes/run; "
                  "measured/simulated = %.4f\n",
                  static_cast<long long>(sim_values),
                  static_cast<long long>(sim_values * 4 * opts.hops),
                  static_cast<double>(report.halo_bytes) /
                      static_cast<double>(sim_values * 4 * opts.hops));
    }
  }

  // 3. Kill worker 1 mid-epoch-1 (deterministic token schedule). The
  // coordinator sees the dead stream, respawns incarnation 1 from the
  // canonical epoch state, replays the epoch, and the output bytes are
  // the same as the uninterrupted run.
  std::printf("== seeded mid-epoch worker kill ==\n");
  {
    const partition::Partition parts = partition::LdgPartition(g, 4, 1.05, 31);
    common::FaultInjector faults;
    faults.ArmAt(dist::kSiteWorkerKill,
                 static_cast<int64_t>(dist::KillToken(1, 1, 0)));
    core::RunContext ctx;
    ctx.metrics = &metrics;
    ctx.faults = &faults;
    dist::DistReport report;
    auto out_or = dist::RunDistributedPropagation(g, parts, x, opts, ctx,
                                                  &report);
    if (!out_or.ok()) {
      std::printf("killed run failed: %s\n",
                  out_or.status().ToString().c_str());
      return 1;
    }
    const bool identical =
        std::memcmp(want.data(), out_or.value().data(),
                    static_cast<size_t>(want.size()) * sizeof(float)) == 0;
    std::printf("respawns=%d, output bit-identical after recovery: %s\n",
                report.respawns, identical ? "yes" : "NO");
    if (!identical || report.respawns < 1) return 1;
  }

  // 4. Checkpoint every epoch, then resume at a different worker count.
  std::printf("== checkpoint / resume ==\n");
  {
    const std::string path =
        (std::filesystem::temp_directory_path() / "sgnn_dist_example.ckpt")
            .string();
    std::filesystem::remove(path);
    dist::DistOptions half = opts;
    half.hops = 1;
    half.checkpoint_path = path;
    core::RunContext ctx;
    ctx.metrics = &metrics;
    ctx.faults = &no_faults;
    auto first_or = dist::RunDistributedPropagation(
        g, partition::LdgPartition(g, 2, 1.05, 31), x, half, ctx);
    if (!first_or.ok()) return 1;

    dist::DistOptions full = opts;  // hops = 2.
    full.checkpoint_path = path;
    dist::DistReport report;
    auto resumed_or = dist::RunDistributedPropagation(
        g, partition::LdgPartition(g, 4, 1.05, 31), x, full, ctx, &report);
    if (!resumed_or.ok()) return 1;
    const bool identical =
        std::memcmp(want.data(), resumed_or.value().data(),
                    static_cast<size_t>(want.size()) * sizeof(float)) == 0;
    std::printf("resumed at k=4 from a k=2 snapshot: restored %d epoch(s), "
                "ran %d, bit-identical: %s\n",
                report.epochs_restored, report.epochs_run,
                identical ? "yes" : "NO");
    std::filesystem::remove(path);
    if (!identical) return 1;
  }

  // The registry now holds the sgnn_dist_* counters every run above
  // incremented (bytes by channel, frames, respawns, epochs, checkpoints).
  std::printf("== metrics ==\n%s",
              metrics.PrometheusText(/*include_volatile=*/false).c_str());
  return 0;
}
