// Network serving tour: a BatchingServer behind the epoll HTTP front
// door, scraped the way Prometheus would — over the wire. The example
//   1. starts the server + front door on an ephemeral loopback port with
//      one shared MetricsRegistry,
//   2. drives a few tenants' worth of POST /v1/infer traffic through the
//      keep-alive HttpClient,
//   3. checks GET /healthz, and
//   4. fetches GET /metrics and prints the exposition it received.
//
// `--prometheus-only` prints just the HTTP-fetched exposition text to
// stdout; the metrics_exposition_http ctest drives the example in that
// mode, so the grammar checker validates the bytes a real scraper would
// see — socket, admission, JSON render and all — not an in-process
// Render() call.

#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/run_context.h"
#include "net/client.h"
#include "net/server.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"

int main(int argc, char** argv) {
  using namespace sgnn;
  using graph::NodeId;
  const bool prometheus_only =
      argc > 1 && std::strcmp(argv[1], "--prometheus-only") == 0;

  constexpr int64_t kEmbedDim = 8;
  constexpr int kClasses = 3;
  constexpr NodeId kNodes = 256;

  // One registry: the serve series (batches, cache, latency ticks) and
  // the net series (accepts, admissions, sheds) land side by side, so a
  // single scrape sees the whole serving tier.
  obs::MetricsRegistry metrics;
  core::RunContext ctx;
  ctx.metrics = &metrics;

  common::Rng rng(17);
  nn::Mlp mlp({kEmbedDim, kClasses}, /*dropout=*/0.0, &rng);
  serve::ServeConfig serve_config;
  serve_config.max_batch = 8;
  serve_config.max_delay_micros = 100;
  serve_config.num_workers = 2;
  serve::BatchingServer server(
      serve::FrozenModel::FromMlp(mlp),
      [](NodeId node, std::span<float> out) {
        for (size_t j = 0; j < out.size(); ++j) {
          out[j] = 0.01f * static_cast<float>(node) + static_cast<float>(j);
        }
        return common::Status::OK();
      },
      kNodes, serve_config, ctx);

  net::HttpFrontDoorConfig door_config;
  door_config.admission.tenants["alpha"].weight = 1.0;
  door_config.admission.tenants["beta"].weight = 2.0;
  net::HttpFrontDoor door(&server, door_config, ctx);
  if (common::Status started = door.Start(); !started.ok()) {
    std::fprintf(stderr, "front door failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  auto client_or = net::HttpClient::Connect("127.0.0.1", door.port());
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  net::HttpClient client = std::move(client_or).value();

  // A little two-tenant burst, with repeats so the cache gets hits.
  for (const char* tenant : {"alpha", "beta"}) {
    for (const NodeId node : {NodeId(3), NodeId(7), NodeId(3), NodeId(11)}) {
      const std::string body = "{\"node\":" + std::to_string(node) +
                               ",\"tenant\":\"" + tenant + "\"}";
      auto response = client.Post("/v1/infer", body);
      if (!response.ok() || response.value().status_code != 200) {
        std::fprintf(stderr, "infer failed for tenant %s node %lld\n", tenant,
                     static_cast<long long>(node));
        return 1;
      }
      if (!prometheus_only) {
        std::printf("POST /v1/infer %-5s node %2lld -> %s\n", tenant,
                    static_cast<long long>(node),
                    response.value().body.c_str());
      }
    }
  }

  auto healthz = client.Get("/healthz");
  if (!healthz.ok() || healthz.value().status_code != 200) {
    std::fprintf(stderr, "healthz failed\n");
    return 1;
  }
  if (!prometheus_only) {
    std::printf("\nGET /healthz -> %d %s\n", healthz.value().status_code,
                healthz.value().body.c_str());
  }

  // The scrape, over the wire: these are the bytes Prometheus would see.
  auto scraped = client.Get("/metrics");
  if (!scraped.ok() || scraped.value().status_code != 200) {
    std::fprintf(stderr, "metrics scrape failed\n");
    return 1;
  }
  if (!prometheus_only) {
    std::printf("\nGET /metrics (as a scraper sees it):\n");
  }
  std::fputs(scraped.value().body.c_str(), stdout);

  client.Close();
  door.Shutdown();
  server.Shutdown();
  return 0;
}
