// Online inference serving (the deployment story).
//
// Train a decoupled SGC model offline, freeze its MLP head, and stand up a
// BatchingServer that answers single-node classification requests online:
// requests queue into dynamic micro-batches, k-hop ego-net propagation
// computes embeddings on demand, and the historical embedding cache turns
// repeat traffic into propagation-free hits. The printed metrics show the
// serving-side levers: batch size amortises the MLP forward, the cache
// amortises the graph gather.

#include <cstdio>
#include <future>
#include <vector>

#include "common/rng.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "models/decoupled.h"
#include "serve/batching_server.h"
#include "serve/handoff.h"

int main() {
  using namespace sgnn;

  // --- Offline: train the model as usual. ---
  core::SbmDatasetConfig dconfig;
  dconfig.sbm = {.num_nodes = 5000, .num_classes = 4, .avg_degree = 12,
                 .homophily = 0.85};
  dconfig.feature_dim = 16;
  dconfig.feature_noise = 0.6;
  core::Dataset dataset = core::MakeSbmDataset(dconfig, 11);

  nn::TrainConfig config;
  config.epochs = 60;
  config.hidden_dim = 32;
  config.lr = 0.02;

  const int hops = 2;
  core::Pipeline pipeline;
  pipeline.SetModel(
      "sgc", [&](const graph::CsrGraph& g, const tensor::Matrix& x,
                 std::span<const int> labels, const models::NodeSplits& splits,
                 const nn::TrainConfig& train_config) {
        return models::TrainSgc(g, x, labels, splits, train_config,
                                models::SgcConfig{.hops = hops});
      });
  core::PipelineReport report = pipeline.Run(dataset, config);
  std::printf("offline training:\n%s\n", report.ToString().c_str());

  // --- Online: freeze the head and serve. ---
  serve::ServeConfig serve_config;
  serve_config.max_batch = 16;
  serve_config.max_delay_micros = 500;
  serve_config.num_workers = 2;
  auto server_or = serve::ServePipeline(dataset, report, hops, serve_config);
  if (!server_or.ok()) {
    std::printf("handoff failed: %s\n", server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::BatchingServer> server =
      std::move(server_or).value();

  // Simulate a client: two passes over a hot set of nodes. The second
  // pass is served from the embedding cache without touching the graph.
  common::Rng rng(7);
  std::vector<graph::NodeId> hot;
  for (int i = 0; i < 400; ++i) {
    hot.push_back(static_cast<graph::NodeId>(
        rng.UniformInt(static_cast<uint64_t>(dataset.num_nodes()) / 10)));
  }
  int correct = 0;
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::future<serve::InferenceResponse>> futures;
    for (graph::NodeId u : hot) {
      auto future_or = server->Submit(serve::InferenceRequest(u));
      if (future_or.ok()) futures.push_back(std::move(future_or).value());
    }
    for (auto& future : futures) {
      serve::InferenceResponse response = future.get();
      if (pass == 1 &&
          response.predicted_class == dataset.labels[response.node]) {
        ++correct;
      }
    }
  }
  server->Shutdown();

  serve::ServeMetricsSnapshot snap = server->Metrics();
  std::printf("online serving:\n%s\n", snap.ToString().c_str());
  std::printf("hot-set accuracy %.3f (train/test accuracy above)\n",
              static_cast<double>(correct) / static_cast<double>(hot.size()));
  return 0;
}
