// Streaming graphs and time-respecting extraction (§3.4.2).
//
// Edges arrive as a timestamped stream (a growing interaction network).
// The example maintains a DynamicGraph incrementally, freezes snapshots,
// extracts GENTI-style temporal walks that only move forward in time, and
// uses the mid-stream snapshot's PPR-smoothed embeddings to predict which
// links will appear in the second half of the stream — link prediction as
// the paper's second canonical task.

#include <cstdio>

#include "core/dataset.h"
#include "core/link_prediction.h"
#include "graph/dynamic_graph.h"
#include "graph/propagate.h"
#include "ppr/feature_propagation.h"

int main() {
  using namespace sgnn;

  // Ground-truth network the stream reveals: a homophilous SBM.
  core::SbmDatasetConfig dconfig;
  dconfig.sbm = {.num_nodes = 2000, .num_classes = 4, .avg_degree = 12,
                 .homophily = 0.9};
  dconfig.feature_dim = 16;
  dconfig.feature_noise = 0.5;
  core::Dataset dataset = core::MakeSbmDataset(dconfig, 21);

  // Stream the edges in random order with increasing timestamps.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> stream;
  for (graph::NodeId u = 0; u < dataset.num_nodes(); ++u) {
    for (graph::NodeId v : dataset.graph.Neighbors(u)) {
      if (u < v) stream.emplace_back(u, v);
    }
  }
  common::Rng rng(5);
  rng.Shuffle(&stream);

  graph::DynamicGraph dynamic(dataset.num_nodes());
  int64_t t = 0;
  const int64_t half = static_cast<int64_t>(stream.size() / 2);
  for (const auto& [u, v] : stream) dynamic.AddUndirectedEdge(u, v, ++t);
  std::printf("streamed %zu undirected edges\n", stream.size());

  // Snapshot at mid-stream.
  graph::CsrGraph half_graph = dynamic.SnapshotAt(half);
  std::printf("snapshot@50%%: %lld directed edges (full: %lld)\n",
              static_cast<long long>(half_graph.num_edges()),
              static_cast<long long>(dynamic.num_edges()));

  // Temporal walks from a few seeds starting mid-stream: they can only
  // traverse edges that arrive after their current position in time.
  std::printf("\ntemporal walks from t=%lld:\n", static_cast<long long>(half));
  for (graph::NodeId seed : {0u, 500u, 1500u}) {
    auto walk = dynamic.TemporalWalk(seed, 8, half, &rng);
    std::printf("  seed %-5u visits %zu nodes:", seed, walk.size());
    for (graph::NodeId u : walk) std::printf(" %u", u);
    std::printf("\n");
  }

  // Predict the second half of the stream from the first half: embed the
  // mid-stream snapshot, score future pairs vs random non-edges.
  core::LinkSplit split;
  split.train_graph = half_graph;
  for (size_t i = static_cast<size_t>(half); i < stream.size(); ++i) {
    split.test_pos.push_back(stream[i]);
  }
  while (split.test_neg.size() < split.test_pos.size()) {
    const auto u = static_cast<graph::NodeId>(
        rng.UniformInt(dataset.num_nodes()));
    const auto v = static_cast<graph::NodeId>(
        rng.UniformInt(dataset.num_nodes()));
    if (u == v || dataset.graph.HasEdge(u, v)) continue;
    split.test_neg.emplace_back(u, v);
  }
  graph::Propagator prop(half_graph, graph::Normalization::kSymmetric, true);
  tensor::Matrix embeddings =
      ppr::AppnpPropagate(prop, dataset.features, 0.15, 8);
  std::printf("\nfuture-link AUC from mid-stream embeddings: %.3f "
              "(raw features: %.3f)\n",
              core::EmbeddingLinkAuc(embeddings, split),
              core::EmbeddingLinkAuc(dataset.features, split));
  return 0;
}
