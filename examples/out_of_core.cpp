// Out-of-core propagation under a hard memory budget (the §3.2 "graph data
// management for large-scale GNNs" scenario).
//
// A graph larger than RAM is converted once to the on-disk sharded format,
// then the decoupled-GNN precompute path (feature propagation + PPR) runs
// against the mmap'd `storage::ShardedGraph` view with a resident budget a
// fraction of the CSR bytes. The storage contract is that the budget only
// changes shard fault/eviction counts — every number computed is
// bit-identical to the in-memory kernels — so the run prints the identity
// check next to the per-budget cache traffic.
//
// `out_of_core --smoke` exits non-zero unless byte-identity holds at every
// budget (used by CI and the verify recipe).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/validate.h"
#include "common/rng.h"
#include "core/run_context.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "ppr/ppr.h"
#include "storage/ooc.h"
#include "storage/shard_writer.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"

int main(int argc, char** argv) {
  using namespace sgnn;
  using graph::NodeId;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }

  const NodeId num_nodes = smoke ? NodeId(1) << 12 : NodeId(1) << 15;
  const int64_t num_edges = smoke ? int64_t(1) << 15 : int64_t(1) << 19;
  std::printf("building R-MAT graph (n=%u, m=%lld)...\n", num_nodes,
              static_cast<long long>(num_edges));
  const graph::CsrGraph g =
      graph::Rmat(num_nodes, num_edges, graph::RmatConfig{}, 7);

  // One-time conversion: contiguous edge-balanced shards, every section
  // CRC-32'd, manifest written last so a crash never leaves a directory
  // that opens with partial data.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sgnn_out_of_core").string();
  std::filesystem::remove_all(dir);
  const storage::ShardPlan plan = storage::ShardPlan::Contiguous(g, 8);
  if (auto status = storage::WriteShardedGraph(g, plan, dir); !status.ok()) {
    std::fprintf(stderr, "conversion failed: %s\n", status.message().c_str());
    return 1;
  }

  // In-memory reference results for the identity check.
  const graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  tensor::Matrix x(static_cast<int64_t>(g.num_nodes()), 8);
  common::Rng fill(1);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(fill.Uniform(-1.0, 1.0));
  }
  tensor::Matrix reference;
  prop.Apply(x, &reference);
  const std::vector<NodeId> seeds = {1, 17, 42, 99};
  const auto ppr_reference = ppr::PushBatch(g, seeds, 0.15, 1e-4);

  // Validate-every-stage debug mode deep-checks the shard files at open,
  // exactly like checkpoint validation.
  core::RunContext ctx;
  ctx.validate_stages = true;

  int failures = 0;
  uint64_t total = 0;
  // The minimum feasible budget is one whole shard: kernels pin a shard at
  // a time, so a budget below the largest shard file is kResourceExhausted
  // by contract. Clamp the sweep to stay within feasible territory.
  uint64_t max_shard = 0;
  {
    auto open_or =
        storage::ShardedGraph::Open(dir, analysis::ShardOpenOptions(ctx));
    if (open_or.ok()) {
      total = open_or.value()->total_shard_bytes();
      for (const auto& entry : open_or.value()->manifest().shards) {
        max_shard = std::max(max_shard, entry.file_bytes);
      }
    }
  }
  std::printf("\n%-14s %-12s %-10s %-10s %-12s %s\n", "budget", "resident%",
              "loads", "evictions", "peak_bytes", "identical");
  for (const uint64_t divisor : {uint64_t{1}, uint64_t{3}, uint64_t{8}}) {
    ctx.resident_budget_bytes = std::max(total / divisor, max_shard);
    auto open_or =
        storage::ShardedGraph::Open(dir, analysis::ShardOpenOptions(ctx));
    if (!open_or.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   open_or.status().message().c_str());
      return 1;
    }
    storage::ShardedGraph& sg = *open_or.value();
    auto ooc_or = storage::OocPropagator::Create(
        &sg, graph::Normalization::kSymmetric, true);
    tensor::Matrix out;
    bool ok = ooc_or.ok() && ooc_or.value().Apply(x, &out).ok() &&
              out.size() == reference.size() &&
              std::memcmp(out.data(), reference.data(),
                          static_cast<size_t>(out.size()) * sizeof(float)) == 0;
    auto ppr_or = storage::PushBatch(&sg, seeds, 0.15, 1e-4);
    ok = ok && ppr_or.ok() && ppr_or.value().size() == ppr_reference.size();
    for (size_t i = 0; ok && i < seeds.size(); ++i) {
      ok = ppr_or.value()[i].estimate == ppr_reference[i].estimate;
    }
    if (!ok) ++failures;
    const storage::StorageStats stats = sg.stats();
    if (stats.peak_resident_bytes > ctx.resident_budget_bytes) ++failures;
    std::printf("%-14llu %-12.0f %-10llu %-10llu %-12llu %s\n",
                static_cast<unsigned long long>(ctx.resident_budget_bytes),
                100.0 * static_cast<double>(stats.peak_resident_bytes) /
                    static_cast<double>(total),
                static_cast<unsigned long long>(stats.loads),
                static_cast<unsigned long long>(stats.evictions),
                static_cast<unsigned long long>(stats.peak_resident_bytes),
                ok ? "yes" : "NO");
  }
  std::filesystem::remove_all(dir);

  std::printf(
      "\nExpected shape: identical results at every budget; smaller budgets "
      "trade more shard loads/evictions for a smaller resident peak.\n");
  if (smoke) {
    std::printf("smoke: %s\n", failures == 0 ? "PASS" : "FAIL");
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
