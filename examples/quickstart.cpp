// Quickstart: build a graph, train a GCN, inspect the taxonomy.
//
// This is the 5-minute tour of the library's public API:
//   1. assemble a graph with EdgeListBuilder / use a bundled dataset,
//   2. train a model from the zoo on a node-classification task,
//   3. run a couple of graph-analytics primitives on the same graph,
//   4. list the Figure-1 technique registry.

#include <cstdio>

#include "core/dataset.h"
#include "core/registry.h"
#include "models/gcn.h"
#include "ppr/ppr.h"
#include "similarity/hub_labeling.h"

int main() {
  using namespace sgnn;

  // 1. Zachary's karate club with noisy prototype features.
  core::Dataset dataset = core::MakeKarateDataset(/*feature_noise=*/0.4,
                                                  /*seed=*/7);
  std::printf("karate club: %u nodes, %lld directed edges, %d classes\n",
              dataset.num_nodes(),
              static_cast<long long>(dataset.graph.num_edges()),
              dataset.num_classes);

  // 2. Train a 2-layer GCN full batch.
  nn::TrainConfig config;
  config.epochs = 100;
  config.hidden_dim = 16;
  config.lr = 0.02;
  models::ModelResult result = models::TrainGcn(
      dataset.graph, dataset.features, dataset.labels, dataset.splits,
      config);
  std::printf("GCN: val %.3f test %.3f after %d epochs (%.3fs)\n",
              result.report.best_val_accuracy, result.report.test_accuracy,
              result.report.epochs_run, result.report.train_seconds);
  std::printf("work: %s\n", result.ops.ToString().c_str());

  // 3a. Personalised PageRank from the instructor (node 0).
  auto top = ppr::TopKPpr(dataset.graph, 0, 0.15, 5, 1e-6);
  std::printf("top-5 PPR neighbours of node 0:");
  for (const auto& [v, mass] : top) std::printf(" %u(%.3f)", v, mass);
  std::printf("\n");

  // 3b. Exact shortest-path distances from a hub-label index.
  similarity::HubLabeling index(dataset.graph);
  std::printf("hub labels: %lld entries; spd(16, 25) = %d\n",
              static_cast<long long>(index.TotalLabelEntries()),
              index.Query(16, 25));

  // 4. The executable Figure-1 taxonomy.
  std::printf("\nregistered techniques (%zu):\n",
              core::TechniqueRegistry().size());
  for (const core::Technique& t : core::TechniqueRegistry()) {
    std::printf("  %-28s %s\n", t.name.c_str(), t.figure1_path.c_str());
  }
  return 0;
}
