# Empty dependencies file for distributed_sim_test.
# This may be replaced when dependencies are built.
