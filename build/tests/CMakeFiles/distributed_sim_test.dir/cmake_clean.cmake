file(REMOVE_RECURSE
  "CMakeFiles/distributed_sim_test.dir/distributed_sim_test.cc.o"
  "CMakeFiles/distributed_sim_test.dir/distributed_sim_test.cc.o.d"
  "distributed_sim_test"
  "distributed_sim_test.pdb"
  "distributed_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
