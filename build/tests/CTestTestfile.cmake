# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ppr_test[1]_include.cmake")
include("/root/repo/build/tests/spectral_test[1]_include.cmake")
include("/root/repo/build/tests/similarity_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/sparsify_test[1]_include.cmake")
include("/root/repo/build/tests/coarsen_test[1]_include.cmake")
include("/root/repo/build/tests/subgraph_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_graph_test[1]_include.cmake")
include("/root/repo/build/tests/centrality_test[1]_include.cmake")
include("/root/repo/build/tests/link_prediction_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_sim_test[1]_include.cmake")
