file(REMOVE_RECURSE
  "CMakeFiles/bench_transformer.dir/bench/bench_transformer.cc.o"
  "CMakeFiles/bench_transformer.dir/bench/bench_transformer.cc.o.d"
  "bench/bench_transformer"
  "bench/bench_transformer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transformer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
