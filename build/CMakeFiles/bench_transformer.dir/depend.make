# Empty dependencies file for bench_transformer.
# This may be replaced when dependencies are built.
