file(REMOVE_RECURSE
  "CMakeFiles/bench_partition.dir/bench/bench_partition.cc.o"
  "CMakeFiles/bench_partition.dir/bench/bench_partition.cc.o.d"
  "bench/bench_partition"
  "bench/bench_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
