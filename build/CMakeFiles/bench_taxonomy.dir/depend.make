# Empty dependencies file for bench_taxonomy.
# This may be replaced when dependencies are built.
