# Empty compiler generated dependencies file for bench_coarsen.
# This may be replaced when dependencies are built.
