file(REMOVE_RECURSE
  "CMakeFiles/bench_coarsen.dir/bench/bench_coarsen.cc.o"
  "CMakeFiles/bench_coarsen.dir/bench/bench_coarsen.cc.o.d"
  "bench/bench_coarsen"
  "bench/bench_coarsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
