file(REMOVE_RECURSE
  "CMakeFiles/bench_ppr.dir/bench/bench_ppr.cc.o"
  "CMakeFiles/bench_ppr.dir/bench/bench_ppr.cc.o.d"
  "bench/bench_ppr"
  "bench/bench_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
