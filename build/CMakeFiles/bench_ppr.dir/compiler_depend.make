# Empty compiler generated dependencies file for bench_ppr.
# This may be replaced when dependencies are built.
