# Empty dependencies file for bench_implicit.
# This may be replaced when dependencies are built.
