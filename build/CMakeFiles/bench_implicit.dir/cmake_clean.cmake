file(REMOVE_RECURSE
  "CMakeFiles/bench_implicit.dir/bench/bench_implicit.cc.o"
  "CMakeFiles/bench_implicit.dir/bench/bench_implicit.cc.o.d"
  "bench/bench_implicit"
  "bench/bench_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
