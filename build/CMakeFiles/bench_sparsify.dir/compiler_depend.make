# Empty compiler generated dependencies file for bench_sparsify.
# This may be replaced when dependencies are built.
