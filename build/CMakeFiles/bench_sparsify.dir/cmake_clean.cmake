file(REMOVE_RECURSE
  "CMakeFiles/bench_sparsify.dir/bench/bench_sparsify.cc.o"
  "CMakeFiles/bench_sparsify.dir/bench/bench_sparsify.cc.o.d"
  "bench/bench_sparsify"
  "bench/bench_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
