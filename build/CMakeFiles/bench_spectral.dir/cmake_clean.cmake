file(REMOVE_RECURSE
  "CMakeFiles/bench_spectral.dir/bench/bench_spectral.cc.o"
  "CMakeFiles/bench_spectral.dir/bench/bench_spectral.cc.o.d"
  "bench/bench_spectral"
  "bench/bench_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
