file(REMOVE_RECURSE
  "CMakeFiles/bench_sampling.dir/bench/bench_sampling.cc.o"
  "CMakeFiles/bench_sampling.dir/bench/bench_sampling.cc.o.d"
  "bench/bench_sampling"
  "bench/bench_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
