file(REMOVE_RECURSE
  "CMakeFiles/bench_similarity.dir/bench/bench_similarity.cc.o"
  "CMakeFiles/bench_similarity.dir/bench/bench_similarity.cc.o.d"
  "bench/bench_similarity"
  "bench/bench_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
