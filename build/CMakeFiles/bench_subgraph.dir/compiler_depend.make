# Empty compiler generated dependencies file for bench_subgraph.
# This may be replaced when dependencies are built.
