file(REMOVE_RECURSE
  "CMakeFiles/bench_subgraph.dir/bench/bench_subgraph.cc.o"
  "CMakeFiles/bench_subgraph.dir/bench/bench_subgraph.cc.o.d"
  "bench/bench_subgraph"
  "bench/bench_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
