
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_distributed.cc" "CMakeFiles/bench_distributed.dir/bench/bench_distributed.cc.o" "gcc" "CMakeFiles/bench_distributed.dir/bench/bench_distributed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sgnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coarsen/CMakeFiles/sgnn_coarsen.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sgnn_models.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/sgnn_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sgnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sgnn_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/ppr/CMakeFiles/sgnn_ppr.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/sgnn_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/sgnn_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/sparsify/CMakeFiles/sgnn_sparsify.dir/DependInfo.cmake"
  "/root/repo/build/src/spectral/CMakeFiles/sgnn_spectral.dir/DependInfo.cmake"
  "/root/repo/build/src/subgraph/CMakeFiles/sgnn_subgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sgnn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sgnn_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sgnn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
