# Empty compiler generated dependencies file for ppr_recommendation.
# This may be replaced when dependencies are built.
