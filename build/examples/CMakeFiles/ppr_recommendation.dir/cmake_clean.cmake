file(REMOVE_RECURSE
  "CMakeFiles/ppr_recommendation.dir/ppr_recommendation.cpp.o"
  "CMakeFiles/ppr_recommendation.dir/ppr_recommendation.cpp.o.d"
  "ppr_recommendation"
  "ppr_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
