file(REMOVE_RECURSE
  "CMakeFiles/heterophily_classification.dir/heterophily_classification.cpp.o"
  "CMakeFiles/heterophily_classification.dir/heterophily_classification.cpp.o.d"
  "heterophily_classification"
  "heterophily_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterophily_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
