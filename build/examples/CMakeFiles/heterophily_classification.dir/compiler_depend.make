# Empty compiler generated dependencies file for heterophily_classification.
# This may be replaced when dependencies are built.
