file(REMOVE_RECURSE
  "CMakeFiles/large_graph_minibatch.dir/large_graph_minibatch.cpp.o"
  "CMakeFiles/large_graph_minibatch.dir/large_graph_minibatch.cpp.o.d"
  "large_graph_minibatch"
  "large_graph_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_graph_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
