# Empty dependencies file for large_graph_minibatch.
# This may be replaced when dependencies are built.
