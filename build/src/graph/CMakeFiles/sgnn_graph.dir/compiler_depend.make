# Empty compiler generated dependencies file for sgnn_graph.
# This may be replaced when dependencies are built.
