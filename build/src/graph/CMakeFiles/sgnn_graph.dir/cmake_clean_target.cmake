file(REMOVE_RECURSE
  "libsgnn_graph.a"
)
