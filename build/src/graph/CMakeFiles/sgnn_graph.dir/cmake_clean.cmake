file(REMOVE_RECURSE
  "CMakeFiles/sgnn_graph.dir/centrality.cc.o"
  "CMakeFiles/sgnn_graph.dir/centrality.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/coo.cc.o"
  "CMakeFiles/sgnn_graph.dir/coo.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/csr_graph.cc.o"
  "CMakeFiles/sgnn_graph.dir/csr_graph.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/dynamic_graph.cc.o"
  "CMakeFiles/sgnn_graph.dir/dynamic_graph.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/generators.cc.o"
  "CMakeFiles/sgnn_graph.dir/generators.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/io.cc.o"
  "CMakeFiles/sgnn_graph.dir/io.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/metrics.cc.o"
  "CMakeFiles/sgnn_graph.dir/metrics.cc.o.d"
  "CMakeFiles/sgnn_graph.dir/propagate.cc.o"
  "CMakeFiles/sgnn_graph.dir/propagate.cc.o.d"
  "libsgnn_graph.a"
  "libsgnn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
