
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/centrality.cc" "src/graph/CMakeFiles/sgnn_graph.dir/centrality.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/centrality.cc.o.d"
  "/root/repo/src/graph/coo.cc" "src/graph/CMakeFiles/sgnn_graph.dir/coo.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/coo.cc.o.d"
  "/root/repo/src/graph/csr_graph.cc" "src/graph/CMakeFiles/sgnn_graph.dir/csr_graph.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/csr_graph.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/graph/CMakeFiles/sgnn_graph.dir/dynamic_graph.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/sgnn_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/sgnn_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/metrics.cc" "src/graph/CMakeFiles/sgnn_graph.dir/metrics.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/metrics.cc.o.d"
  "/root/repo/src/graph/propagate.cc" "src/graph/CMakeFiles/sgnn_graph.dir/propagate.cc.o" "gcc" "src/graph/CMakeFiles/sgnn_graph.dir/propagate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sgnn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sgnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
