# Empty dependencies file for sgnn_models.
# This may be replaced when dependencies are built.
