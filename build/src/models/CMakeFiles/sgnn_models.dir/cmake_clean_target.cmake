file(REMOVE_RECURSE
  "libsgnn_models.a"
)
