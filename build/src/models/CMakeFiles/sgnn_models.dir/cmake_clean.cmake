file(REMOVE_RECURSE
  "CMakeFiles/sgnn_models.dir/api.cc.o"
  "CMakeFiles/sgnn_models.dir/api.cc.o.d"
  "CMakeFiles/sgnn_models.dir/cluster_gcn.cc.o"
  "CMakeFiles/sgnn_models.dir/cluster_gcn.cc.o.d"
  "CMakeFiles/sgnn_models.dir/decoupled.cc.o"
  "CMakeFiles/sgnn_models.dir/decoupled.cc.o.d"
  "CMakeFiles/sgnn_models.dir/gcn.cc.o"
  "CMakeFiles/sgnn_models.dir/gcn.cc.o.d"
  "CMakeFiles/sgnn_models.dir/graph_transformer.cc.o"
  "CMakeFiles/sgnn_models.dir/graph_transformer.cc.o.d"
  "CMakeFiles/sgnn_models.dir/sage.cc.o"
  "CMakeFiles/sgnn_models.dir/sage.cc.o.d"
  "CMakeFiles/sgnn_models.dir/saint.cc.o"
  "CMakeFiles/sgnn_models.dir/saint.cc.o.d"
  "libsgnn_models.a"
  "libsgnn_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
