# CMake generated Testfile for 
# Source directory: /root/repo/src/subgraph
# Build directory: /root/repo/build/src/subgraph
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
