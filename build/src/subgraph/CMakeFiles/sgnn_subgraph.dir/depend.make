# Empty dependencies file for sgnn_subgraph.
# This may be replaced when dependencies are built.
