file(REMOVE_RECURSE
  "libsgnn_subgraph.a"
)
