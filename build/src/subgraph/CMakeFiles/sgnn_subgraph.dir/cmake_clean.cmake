file(REMOVE_RECURSE
  "CMakeFiles/sgnn_subgraph.dir/khop.cc.o"
  "CMakeFiles/sgnn_subgraph.dir/khop.cc.o.d"
  "CMakeFiles/sgnn_subgraph.dir/walk_store.cc.o"
  "CMakeFiles/sgnn_subgraph.dir/walk_store.cc.o.d"
  "libsgnn_subgraph.a"
  "libsgnn_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
