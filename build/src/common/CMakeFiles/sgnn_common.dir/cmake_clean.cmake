file(REMOVE_RECURSE
  "CMakeFiles/sgnn_common.dir/counters.cc.o"
  "CMakeFiles/sgnn_common.dir/counters.cc.o.d"
  "CMakeFiles/sgnn_common.dir/rng.cc.o"
  "CMakeFiles/sgnn_common.dir/rng.cc.o.d"
  "CMakeFiles/sgnn_common.dir/status.cc.o"
  "CMakeFiles/sgnn_common.dir/status.cc.o.d"
  "libsgnn_common.a"
  "libsgnn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
