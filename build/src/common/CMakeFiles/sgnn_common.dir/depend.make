# Empty dependencies file for sgnn_common.
# This may be replaced when dependencies are built.
