file(REMOVE_RECURSE
  "libsgnn_common.a"
)
