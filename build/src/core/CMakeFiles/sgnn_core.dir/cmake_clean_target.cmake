file(REMOVE_RECURSE
  "libsgnn_core.a"
)
