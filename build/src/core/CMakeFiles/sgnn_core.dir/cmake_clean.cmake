file(REMOVE_RECURSE
  "CMakeFiles/sgnn_core.dir/coarse_flow.cc.o"
  "CMakeFiles/sgnn_core.dir/coarse_flow.cc.o.d"
  "CMakeFiles/sgnn_core.dir/dataset.cc.o"
  "CMakeFiles/sgnn_core.dir/dataset.cc.o.d"
  "CMakeFiles/sgnn_core.dir/dataset_io.cc.o"
  "CMakeFiles/sgnn_core.dir/dataset_io.cc.o.d"
  "CMakeFiles/sgnn_core.dir/distributed_sim.cc.o"
  "CMakeFiles/sgnn_core.dir/distributed_sim.cc.o.d"
  "CMakeFiles/sgnn_core.dir/link_prediction.cc.o"
  "CMakeFiles/sgnn_core.dir/link_prediction.cc.o.d"
  "CMakeFiles/sgnn_core.dir/pipeline.cc.o"
  "CMakeFiles/sgnn_core.dir/pipeline.cc.o.d"
  "CMakeFiles/sgnn_core.dir/registry.cc.o"
  "CMakeFiles/sgnn_core.dir/registry.cc.o.d"
  "CMakeFiles/sgnn_core.dir/stages.cc.o"
  "CMakeFiles/sgnn_core.dir/stages.cc.o.d"
  "libsgnn_core.a"
  "libsgnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
