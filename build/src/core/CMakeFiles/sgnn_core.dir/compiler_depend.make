# Empty compiler generated dependencies file for sgnn_core.
# This may be replaced when dependencies are built.
