file(REMOVE_RECURSE
  "libsgnn_tensor.a"
)
