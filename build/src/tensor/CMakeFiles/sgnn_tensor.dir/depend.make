# Empty dependencies file for sgnn_tensor.
# This may be replaced when dependencies are built.
