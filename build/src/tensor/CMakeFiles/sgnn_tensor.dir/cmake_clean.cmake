file(REMOVE_RECURSE
  "CMakeFiles/sgnn_tensor.dir/matrix.cc.o"
  "CMakeFiles/sgnn_tensor.dir/matrix.cc.o.d"
  "CMakeFiles/sgnn_tensor.dir/ops.cc.o"
  "CMakeFiles/sgnn_tensor.dir/ops.cc.o.d"
  "libsgnn_tensor.a"
  "libsgnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
