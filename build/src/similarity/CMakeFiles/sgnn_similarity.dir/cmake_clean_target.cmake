file(REMOVE_RECURSE
  "libsgnn_similarity.a"
)
