file(REMOVE_RECURSE
  "CMakeFiles/sgnn_similarity.dir/cosine.cc.o"
  "CMakeFiles/sgnn_similarity.dir/cosine.cc.o.d"
  "CMakeFiles/sgnn_similarity.dir/hub_labeling.cc.o"
  "CMakeFiles/sgnn_similarity.dir/hub_labeling.cc.o.d"
  "CMakeFiles/sgnn_similarity.dir/rewiring.cc.o"
  "CMakeFiles/sgnn_similarity.dir/rewiring.cc.o.d"
  "CMakeFiles/sgnn_similarity.dir/simrank.cc.o"
  "CMakeFiles/sgnn_similarity.dir/simrank.cc.o.d"
  "libsgnn_similarity.a"
  "libsgnn_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
