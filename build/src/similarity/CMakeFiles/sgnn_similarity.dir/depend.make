# Empty dependencies file for sgnn_similarity.
# This may be replaced when dependencies are built.
