# Empty dependencies file for sgnn_spectral.
# This may be replaced when dependencies are built.
