file(REMOVE_RECURSE
  "libsgnn_spectral.a"
)
