file(REMOVE_RECURSE
  "CMakeFiles/sgnn_spectral.dir/dense_linalg.cc.o"
  "CMakeFiles/sgnn_spectral.dir/dense_linalg.cc.o.d"
  "CMakeFiles/sgnn_spectral.dir/embeddings.cc.o"
  "CMakeFiles/sgnn_spectral.dir/embeddings.cc.o.d"
  "CMakeFiles/sgnn_spectral.dir/filters.cc.o"
  "CMakeFiles/sgnn_spectral.dir/filters.cc.o.d"
  "CMakeFiles/sgnn_spectral.dir/spectrum.cc.o"
  "CMakeFiles/sgnn_spectral.dir/spectrum.cc.o.d"
  "libsgnn_spectral.a"
  "libsgnn_spectral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
