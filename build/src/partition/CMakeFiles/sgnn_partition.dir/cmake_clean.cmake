file(REMOVE_RECURSE
  "CMakeFiles/sgnn_partition.dir/partition.cc.o"
  "CMakeFiles/sgnn_partition.dir/partition.cc.o.d"
  "libsgnn_partition.a"
  "libsgnn_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
