# Empty dependencies file for sgnn_partition.
# This may be replaced when dependencies are built.
