file(REMOVE_RECURSE
  "libsgnn_partition.a"
)
