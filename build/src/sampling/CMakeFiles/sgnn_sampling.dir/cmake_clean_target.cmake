file(REMOVE_RECURSE
  "libsgnn_sampling.a"
)
