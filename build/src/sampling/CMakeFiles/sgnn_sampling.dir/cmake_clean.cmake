file(REMOVE_RECURSE
  "CMakeFiles/sgnn_sampling.dir/historical_cache.cc.o"
  "CMakeFiles/sgnn_sampling.dir/historical_cache.cc.o.d"
  "CMakeFiles/sgnn_sampling.dir/neighbor_sampler.cc.o"
  "CMakeFiles/sgnn_sampling.dir/neighbor_sampler.cc.o.d"
  "CMakeFiles/sgnn_sampling.dir/subgraph_sampler.cc.o"
  "CMakeFiles/sgnn_sampling.dir/subgraph_sampler.cc.o.d"
  "CMakeFiles/sgnn_sampling.dir/variance.cc.o"
  "CMakeFiles/sgnn_sampling.dir/variance.cc.o.d"
  "libsgnn_sampling.a"
  "libsgnn_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
