# Empty compiler generated dependencies file for sgnn_sampling.
# This may be replaced when dependencies are built.
