file(REMOVE_RECURSE
  "libsgnn_coarsen.a"
)
