file(REMOVE_RECURSE
  "CMakeFiles/sgnn_coarsen.dir/coarsen.cc.o"
  "CMakeFiles/sgnn_coarsen.dir/coarsen.cc.o.d"
  "libsgnn_coarsen.a"
  "libsgnn_coarsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_coarsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
