# Empty compiler generated dependencies file for sgnn_coarsen.
# This may be replaced when dependencies are built.
