file(REMOVE_RECURSE
  "libsgnn_ppr.a"
)
