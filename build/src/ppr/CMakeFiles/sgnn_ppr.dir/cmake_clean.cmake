file(REMOVE_RECURSE
  "CMakeFiles/sgnn_ppr.dir/feature_propagation.cc.o"
  "CMakeFiles/sgnn_ppr.dir/feature_propagation.cc.o.d"
  "CMakeFiles/sgnn_ppr.dir/ppr.cc.o"
  "CMakeFiles/sgnn_ppr.dir/ppr.cc.o.d"
  "libsgnn_ppr.a"
  "libsgnn_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
