# Empty dependencies file for sgnn_ppr.
# This may be replaced when dependencies are built.
