file(REMOVE_RECURSE
  "libsgnn_algebra.a"
)
