file(REMOVE_RECURSE
  "CMakeFiles/sgnn_algebra.dir/implicit.cc.o"
  "CMakeFiles/sgnn_algebra.dir/implicit.cc.o.d"
  "libsgnn_algebra.a"
  "libsgnn_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
