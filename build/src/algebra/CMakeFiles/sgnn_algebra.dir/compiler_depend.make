# Empty compiler generated dependencies file for sgnn_algebra.
# This may be replaced when dependencies are built.
