file(REMOVE_RECURSE
  "libsgnn_nn.a"
)
