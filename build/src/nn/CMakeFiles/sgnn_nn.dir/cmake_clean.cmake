file(REMOVE_RECURSE
  "CMakeFiles/sgnn_nn.dir/attention.cc.o"
  "CMakeFiles/sgnn_nn.dir/attention.cc.o.d"
  "CMakeFiles/sgnn_nn.dir/linear.cc.o"
  "CMakeFiles/sgnn_nn.dir/linear.cc.o.d"
  "CMakeFiles/sgnn_nn.dir/loss.cc.o"
  "CMakeFiles/sgnn_nn.dir/loss.cc.o.d"
  "CMakeFiles/sgnn_nn.dir/mlp.cc.o"
  "CMakeFiles/sgnn_nn.dir/mlp.cc.o.d"
  "CMakeFiles/sgnn_nn.dir/optimizer.cc.o"
  "CMakeFiles/sgnn_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/sgnn_nn.dir/trainer.cc.o"
  "CMakeFiles/sgnn_nn.dir/trainer.cc.o.d"
  "libsgnn_nn.a"
  "libsgnn_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
