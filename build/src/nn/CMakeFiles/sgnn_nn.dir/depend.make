# Empty dependencies file for sgnn_nn.
# This may be replaced when dependencies are built.
