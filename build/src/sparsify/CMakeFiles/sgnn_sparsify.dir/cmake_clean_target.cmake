file(REMOVE_RECURSE
  "libsgnn_sparsify.a"
)
