# Empty compiler generated dependencies file for sgnn_sparsify.
# This may be replaced when dependencies are built.
