file(REMOVE_RECURSE
  "CMakeFiles/sgnn_sparsify.dir/sparsify.cc.o"
  "CMakeFiles/sgnn_sparsify.dir/sparsify.cc.o.d"
  "libsgnn_sparsify.a"
  "libsgnn_sparsify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgnn_sparsify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
